package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// Metric and header names used by the HTTP instrumentation.
const (
	// RequestIDHeader carries the request correlation id; the
	// middleware echoes an incoming value and generates one otherwise.
	RequestIDHeader = "X-Request-ID"

	metricRequestDuration = "http_request_duration_seconds"
	metricRequestsTotal   = "http_requests_total"
	metricInFlight        = "http_in_flight_requests"
)

// statusWriter captures the response status code and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass buckets a status code as "2xx", "4xx", ...
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// HTTPMetrics instruments routes of one server against a registry:
// a per-route latency histogram, per-route status-class counters and
// a shared in-flight gauge.
type HTTPMetrics struct {
	reg      *Registry
	inFlight *Gauge
}

// NewHTTPMetrics binds request instrumentation to a registry.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		reg:      reg,
		inFlight: reg.Gauge(metricInFlight, "Requests currently being served.", nil),
	}
}

// Wrap instruments one route. The histogram and the 2xx counter are
// created eagerly so the families appear in /metrics before the first
// request; other status classes appear on first occurrence.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	hist := m.reg.Histogram(metricRequestDuration,
		"Request latency by route.", Labels{"route": route}, nil)
	m.reg.Counter(metricRequestsTotal,
		"Requests by route and status class.", Labels{"route": route, "code": "2xx"})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		defer m.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		hist.Observe(time.Since(start).Seconds())
		m.reg.Counter(metricRequestsTotal,
			"Requests by route and status class.",
			Labels{"route": route, "code": statusClass(sw.status)}).Inc()
	})
}

// requestIDKey is the context key the request id travels under.
type requestIDKey struct{}

// RequestIDFrom returns the request id stamped by the RequestID
// middleware, or "" outside one.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-char random id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to a fixed id rather than fail the request; the id
		// is a correlation convenience, not a security token.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen caps an echoed client request id. Long enough for
// a UUID or a proxy's composite id, short enough that a hostile
// client cannot inflate every log line.
const maxRequestIDLen = 64

// sanitizeRequestID validates a client-supplied request id before it
// is echoed into response headers and log records. Anything over the
// length cap or outside [A-Za-z0-9._-] is rejected (returns ""), so a
// client cannot inject header or log-line structure — newlines,
// quotes, spaces, key=value separators — through the id.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// RequestID propagates X-Request-ID: a well-formed incoming id (see
// sanitizeRequestID) is kept, a missing or malformed one replaced by
// a generated id; either way the id is echoed on the response and
// stored in the request context for handlers and request logs.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}
