package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. Profiling endpoints expose internals (heap contents,
// goroutine stacks) and can be expensive, so callers gate this behind
// an explicit opt-in flag rather than mounting it unconditionally.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
