package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// base is the process-wide structured logger every component logger
// derives from. It starts as a text handler on slog's default output
// and is replaced by InitLogging (cmd main functions) or SetLogger
// (tests).
var base atomic.Pointer[slog.Logger]

func init() {
	base.Store(slog.Default())
}

// InitLogging points the shared logger at w with the given level and
// format ("json" selects JSON lines, anything else the slog text
// handler) and returns it. Commands call this once at startup.
func InitLogging(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	base.Store(l)
	return l
}

// SetLogger replaces the shared base logger.
func SetLogger(l *slog.Logger) { base.Store(l) }

// Logger returns the shared logger tagged with a component attribute
// ("serve", "live", "sarserve", ...), so every log line is
// attributable to the layer that emitted it.
func Logger(component string) *slog.Logger {
	return base.Load().With("component", component)
}
