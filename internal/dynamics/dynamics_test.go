package dynamics

import (
	"errors"
	"math"
	"testing"

	"scholarrank/internal/corpus"
	"scholarrank/internal/gen"
)

func TestCitationSeries(t *testing.T) {
	b := corpus.NewBuilder()
	add := func(key string, year int) corpus.ArticleID {
		id, err := b.AddArticle(corpus.ArticleMeta{Key: key, Year: year, Venue: corpus.NoVenue})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	old := add("old", 2000)
	mid := add("mid", 2005)
	young := add("young", 2010)
	// old is cited in 2005 (offset 5) and twice in 2010 (offset 10).
	if err := b.AddCitation(mid, old); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCitation(young, old); err != nil {
		t.Fatal(err)
	}
	// mid is cited in 2010 (offset 5).
	if err := b.AddCitation(young, mid); err != nil {
		t.Fatal(err)
	}
	series := CitationSeries(b.Freeze())
	if len(series[old]) != 11 { // 2000..2010
		t.Fatalf("old series length = %d", len(series[old]))
	}
	if series[old][5] != 1 || series[old][10] != 1 {
		t.Errorf("old series = %v", series[old])
	}
	if series[mid][5] != 1 {
		t.Errorf("mid series = %v", series[mid])
	}
	if len(series[young]) != 1 || series[young][0] != 0 {
		t.Errorf("young series = %v", series[young])
	}
}

func TestBeautyCoefficientClassicShapes(t *testing.T) {
	// Immediate hit: peak at year 0 -> B = 0 by definition.
	b, err := BeautyCoefficient([]int{10, 5, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Coefficient != 0 || b.PeakIndex != 0 {
		t.Errorf("immediate hit B = %+v", b)
	}

	// Linear growth exactly on the reference line -> B = 0.
	b, err = BeautyCoefficient([]int{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Coefficient) > 1e-12 {
		t.Errorf("on-line B = %v, want 0", b.Coefficient)
	}

	// The classic sleeper: silence for years, then a burst.
	sleeper, err := BeautyCoefficient([]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if sleeper.Coefficient <= 5 {
		t.Errorf("sleeper B = %v, want large", sleeper.Coefficient)
	}
	if sleeper.PeakIndex != 9 || sleeper.PeakCitations != 20 {
		t.Errorf("sleeper peak = %+v", sleeper)
	}
	// Awakening is late in the sleep, not at the start.
	if sleeper.AwakeningIndex < 5 {
		t.Errorf("awakening = %d, want late", sleeper.AwakeningIndex)
	}

	// A steady performer has a much smaller B than the sleeper.
	steady, err := BeautyCoefficient([]int{2, 5, 8, 11, 14, 17, 18, 19, 19, 20})
	if err != nil {
		t.Fatal(err)
	}
	if steady.Coefficient >= sleeper.Coefficient {
		t.Errorf("steady B %v >= sleeper B %v", steady.Coefficient, sleeper.Coefficient)
	}
}

func TestBeautyCoefficientValidation(t *testing.T) {
	if _, err := BeautyCoefficient(nil); !errors.Is(err, ErrBadSeries) {
		t.Errorf("empty: %v", err)
	}
	if _, err := BeautyCoefficient([]int{1, -2}); !errors.Is(err, ErrBadSeries) {
		t.Errorf("negative: %v", err)
	}
	b, err := BeautyCoefficient([]int{7})
	if err != nil || b.Coefficient != 0 {
		t.Errorf("single year: %+v, %v", b, err)
	}
}

func TestSleepingBeautiesOnGeneratedCorpus(t *testing.T) {
	cfg := gen.NewDefaultConfig(3000)
	cfg.Seed = 13
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, beauties, err := SleepingBeauties(c.Store, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 || len(beauties) != c.Store.NumArticles() {
		t.Fatalf("top=%d beauties=%d", len(top), len(beauties))
	}
	// Descending coefficients.
	for i := 1; i < len(top); i++ {
		if beauties[top[i]].Coefficient > beauties[top[i-1]].Coefficient {
			t.Errorf("not descending at %d", i)
		}
	}
	// The generator's recency bias makes true sleepers rare but the
	// top coefficient must at least be positive.
	if beauties[top[0]].Coefficient <= 0 {
		t.Errorf("top coefficient = %v", beauties[top[0]].Coefficient)
	}
}

func TestTopIndices(t *testing.T) {
	got := topIndices([]float64{1, 9, 5, 9}, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Errorf("topIndices = %v", got)
	}
	if got := topIndices([]float64{1}, 5); len(got) != 1 {
		t.Errorf("clamp failed: %v", got)
	}
}
