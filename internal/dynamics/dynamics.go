// Package dynamics analyses per-article citation histories: the
// yearly citation series, and the "sleeping beauty" statistics of
// Ke et al. (PNAS 2015) that identify articles which lie dormant for
// years and then burst — the canonical failure case for purely
// cumulative importance scores, and a diagnostic the time-aware
// ranking story leans on.
package dynamics

import (
	"errors"
	"fmt"

	"scholarrank/internal/corpus"
)

// ErrBadSeries reports an invalid citation series.
var ErrBadSeries = errors.New("dynamics: invalid citation series")

// CitationSeries returns, for every article, the number of citations
// received in each year from its publication year through the last
// year of the corpus: series[p][k] is the citations article p
// received k years after publication. Articles published in the
// corpus's final year have a single-element series.
func CitationSeries(s *corpus.Store) [][]int {
	n := s.NumArticles()
	_, maxYear := s.YearRange()
	out := make([][]int, n)
	s.VisitArticles(func(id corpus.ArticleID, a *corpus.Article) {
		span := maxYear - a.Year + 1
		if span < 1 {
			span = 1
		}
		out[id] = make([]int, span)
	})
	s.VisitArticles(func(id corpus.ArticleID, a *corpus.Article) {
		for _, ref := range a.Refs {
			cited := s.Article(ref)
			k := a.Year - cited.Year
			if k < 0 {
				k = 0 // metadata noise: citation "from the past"
			}
			if k >= len(out[ref]) {
				k = len(out[ref]) - 1
			}
			out[ref][k]++
		}
	})
	return out
}

// Beauty holds the sleeping-beauty statistics of one article.
type Beauty struct {
	// Coefficient is Ke et al.'s B: the cumulative deviation of the
	// citation history below the reference line from (0, c₀) to the
	// peak (t_m, c_m), each year normalised by max(1, c_t). Large B =
	// long sleep followed by a high peak.
	Coefficient float64
	// AwakeningIndex is the year offset (from publication) at which
	// the history is furthest below the reference line — the moment
	// the article "wakes up".
	AwakeningIndex int
	// PeakIndex and PeakCitations locate the citation maximum.
	PeakIndex     int
	PeakCitations int
}

// BeautyCoefficient computes the sleeping-beauty statistics for one
// yearly citation series (series[k] = citations k years after
// publication). A series shorter than 2 years, or with a peak in
// year 0, has coefficient 0 by definition.
func BeautyCoefficient(series []int) (Beauty, error) {
	if len(series) == 0 {
		return Beauty{}, fmt.Errorf("%w: empty", ErrBadSeries)
	}
	for _, c := range series {
		if c < 0 {
			return Beauty{}, fmt.Errorf("%w: negative count", ErrBadSeries)
		}
	}
	var b Beauty
	for t, c := range series {
		if c > b.PeakCitations {
			b.PeakCitations = c
			b.PeakIndex = t
		}
	}
	if b.PeakIndex == 0 || len(series) < 2 {
		return b, nil
	}
	c0 := float64(series[0])
	cm := float64(b.PeakCitations)
	tm := float64(b.PeakIndex)
	var maxDist float64
	for t := 0; t <= b.PeakIndex; t++ {
		ct := float64(series[t])
		line := (cm-c0)/tm*float64(t) + c0
		denom := ct
		if denom < 1 {
			denom = 1
		}
		b.Coefficient += (line - ct) / denom
		// Awakening: the year with the maximum perpendicular-ish gap
		// below the line (Ke et al. use the normalised distance; the
		// raw gap ranks identically for a fixed line).
		if d := line - ct; d > maxDist {
			maxDist = d
			b.AwakeningIndex = t
		}
	}
	return b, nil
}

// SleepingBeauties scores every article and returns the indices of
// the k highest beauty coefficients in descending order.
func SleepingBeauties(s *corpus.Store, k int) ([]int, []Beauty, error) {
	series := CitationSeries(s)
	beauties := make([]Beauty, len(series))
	coeffs := make([]float64, len(series))
	for i, sr := range series {
		b, err := BeautyCoefficient(sr)
		if err != nil {
			return nil, nil, err
		}
		beauties[i] = b
		coeffs[i] = b.Coefficient
	}
	top := topIndices(coeffs, k)
	return top, beauties, nil
}

// topIndices returns the indices of the k largest values, descending,
// ties broken by lower index.
func topIndices(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Simple partial selection: adequate for analytics-sized k.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
