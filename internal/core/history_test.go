package core

import (
	"errors"
	"testing"

	"scholarrank/internal/gen"
)

func TestRankHistoryTrajectory(t *testing.T) {
	cfg := gen.NewDefaultConfig(2000)
	cfg.Seed = 33
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minY, maxY := c.Store.YearRange()
	mid := (minY + maxY) / 2
	// Track the most-cited article overall.
	in := c.Store.CitationGraph().InDegrees()
	best := 0
	for i, d := range in {
		if d > in[best] {
			best = i
		}
	}
	key := c.Store.Article(int32(best)).Key
	bestYear := c.Store.Article(int32(best)).Year

	hist, err := RankHistory(c.Store, []string{key}, []int{mid, maxY, mid, minY - 5}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Key != key {
		t.Fatalf("histories = %+v", hist)
	}
	snaps := hist[0].Snapshots
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	// Snapshots are in ascending cutoff order, deduplicated, and only
	// include cutoffs at or after publication.
	for i, sn := range snaps {
		if sn.Cutoff < bestYear {
			t.Errorf("snapshot before publication: %+v", sn)
		}
		if i > 0 && sn.Cutoff <= snaps[i-1].Cutoff {
			t.Errorf("cutoffs not strictly ascending: %+v", snaps)
		}
		if sn.Percentile < 0 || sn.Percentile > 1 {
			t.Errorf("percentile %v", sn.Percentile)
		}
	}
	// Citations accumulate monotonically.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Citations < snaps[i-1].Citations {
			t.Errorf("citations decreased: %+v", snaps)
		}
	}
}

func TestRankHistoryValidation(t *testing.T) {
	cfg := gen.NewDefaultConfig(500)
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankHistory(c.Store, nil, []int{2000}, DefaultOptions()); !errors.Is(err, ErrBadHistory) {
		t.Errorf("no keys: %v", err)
	}
	if _, err := RankHistory(c.Store, []string{"p00000001"}, nil, DefaultOptions()); !errors.Is(err, ErrBadHistory) {
		t.Errorf("no cutoffs: %v", err)
	}
	if _, err := RankHistory(c.Store, []string{"ghost"}, []int{2000}, DefaultOptions()); !errors.Is(err, ErrBadHistory) {
		t.Errorf("unknown key: %v", err)
	}
}

func TestExplain(t *testing.T) {
	net := fixture(t)
	sc, err := Rank(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Article 0 (heavily cited) vs article 6 (new, bare).
	ex, err := sc.Explain(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ex.A != 0 || ex.B != 6 {
		t.Errorf("ids = %d,%d", ex.A, ex.B)
	}
	if ex.Winner != 0 && ex.Winner != 6 {
		t.Errorf("winner = %d", ex.Winner)
	}
	wantImp := sc.Importance[0] >= sc.Importance[6]
	if (ex.Winner == 0) != wantImp {
		t.Errorf("winner %d disagrees with importance %v vs %v", ex.Winner, sc.Importance[0], sc.Importance[6])
	}
	if len(ex.Signals) != 3 {
		t.Fatalf("signals = %d", len(ex.Signals))
	}
	// Popularity must favour article 0 (6 is uncited).
	for _, s := range ex.Signals {
		if s.Signal == "popularity" && s.Delta <= 0 {
			t.Errorf("popularity delta = %v, want positive for the cited article", s.Delta)
		}
	}
	if ex.Dominant == "" {
		t.Error("no dominant signal")
	}
}

func TestExplainValidation(t *testing.T) {
	net := fixture(t)
	sc, err := Rank(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Explain(0, 99); !errors.Is(err, ErrBadExplain) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := sc.Explain(-1, 0); !errors.Is(err, ErrBadExplain) {
		t.Errorf("negative: %v", err)
	}
	if _, err := sc.Explain(2, 2); !errors.Is(err, ErrBadExplain) {
		t.Errorf("identical: %v", err)
	}
}
