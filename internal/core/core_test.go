package core

import (
	"errors"
	"math"
	"testing"

	"scholarrank/internal/corpus"
	"scholarrank/internal/eval"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// fixture builds a small corpus exercising every layer:
//
//	p0 2000 venue=v author=star — cited by p1,p2,p3,p4
//	p1 2002 venue=v authors=star,other — cited by p3
//	p2 2004 venue=v author=star — cited by p4
//	p3 2006 (no venue/authors)
//	p4 2008 (no venue/authors)
//	p5 2010 author=star — brand new, uncited
//	p6 2010 (bare) — brand new, uncited, no authors
func fixture(t testing.TB) *hetnet.Network {
	t.Helper()
	s := corpus.NewBuilder()
	star, _ := s.InternAuthor("star", "Star")
	other, _ := s.InternAuthor("other", "Other")
	v, _ := s.InternVenue("v", "Venue")
	add := func(key string, year int, venue corpus.VenueID, authors ...corpus.AuthorID) corpus.ArticleID {
		id, err := s.AddArticle(corpus.ArticleMeta{Key: key, Year: year, Venue: venue, Authors: authors})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	p0 := add("p0", 2000, v, star)
	p1 := add("p1", 2002, v, star, other)
	p2 := add("p2", 2004, v, star)
	p3 := add("p3", 2006, corpus.NoVenue)
	p4 := add("p4", 2008, corpus.NoVenue)
	add("p5", 2010, corpus.NoVenue, star)
	add("p6", 2010, corpus.NoVenue)
	for _, c := range [][2]corpus.ArticleID{
		{p1, p0}, {p2, p0}, {p3, p0}, {p4, p0}, {p3, p1}, {p4, p2},
	} {
		if err := s.AddCitation(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	return hetnet.Build(s.Freeze())
}

func TestDefaultOptionsValid(t *testing.T) {
	if err := DefaultOptions().validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
}

func TestRankBasics(t *testing.T) {
	net := fixture(t)
	sc, err := Rank(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := net.NumArticles()
	for name, vec := range map[string][]float64{
		"Importance": sc.Importance, "Prestige": sc.Prestige,
		"Popularity": sc.Popularity, "Hetero": sc.Hetero,
	} {
		if len(vec) != n {
			t.Errorf("%s length = %d, want %d", name, len(vec), n)
		}
	}
	if !sc.PrestigeStats.Converged || !sc.HeteroStats.Converged {
		t.Errorf("stages did not converge: %+v %+v", sc.PrestigeStats, sc.HeteroStats)
	}
	for i, v := range sc.Importance {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("Importance[%d] = %v outside [0,1]", i, v)
		}
	}
	// On a 7-article fixture the global winner depends on percentile
	// granularity (recency terms dominate tiny corpora); assert the
	// robust within-cohort orderings instead: the heavily cited
	// foundational article beats its less-cited mid-timeline peers,
	// and the new star-authored article beats the new bare article.
	if sc.Importance[0] <= sc.Importance[3] || sc.Importance[0] <= sc.Importance[4] {
		t.Errorf("foundational article does not beat mid articles: %v", sc.Importance)
	}
	if sc.Importance[5] <= sc.Importance[6] {
		t.Errorf("star-authored new article does not beat bare new article: %v vs %v",
			sc.Importance[5], sc.Importance[6])
	}
	if len(rank.TopK(sc.Importance, 3)) != 3 {
		t.Error("TopK failed on importance vector")
	}
}

func TestRankEmptyNetwork(t *testing.T) {
	sc, err := Rank(hetnet.Build(corpus.NewBuilder().Freeze()), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Importance) != 0 {
		t.Errorf("non-empty scores: %+v", sc)
	}
}

func TestOptionValidation(t *testing.T) {
	net := fixture(t)
	cases := map[string]func(*Options){
		"negative rhoGap":  func(o *Options) { o.RhoGap = -1 },
		"negative rhoFade": func(o *Options) { o.RhoFade = -1 },
		"nan rhoRecency":   func(o *Options) { o.RhoRecency = math.NaN() },
		"damping 0":        func(o *Options) { o.Damping = 0 },
		"damping 1":        func(o *Options) { o.Damping = 1 },
		"negative lambda":  func(o *Options) { o.LambdaCite = -0.1; o.LambdaTime = 0.75 },
		"lambdas != 1":     func(o *Options) { o.LambdaCite = 0.9 },
		"zero lambdaTime":  func(o *Options) { o.LambdaCite += o.LambdaTime; o.LambdaTime = 0 },
		"negative weight":  func(o *Options) { o.WPrestige = -1 },
		"all zero weights": func(o *Options) { o.WPrestige, o.WPopularity, o.WHetero = 0, 0, 0 },
		"bad ensemble":     func(o *Options) { o.Ensemble = EnsembleKind(99) },
		"bad norm":         func(o *Options) { o.Normalization = NormKind(99) },
	}
	for name, mutate := range cases {
		opts := DefaultOptions()
		mutate(&opts)
		if _, err := Rank(net, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", name, err)
		}
	}
}

func TestPopularityIsDecayedCitations(t *testing.T) {
	net := fixture(t)
	opts := DefaultOptions()
	pop := computePopularity(net, opts)
	// p0 cited by p1(2002), p2(2004), p3(2006), p4(2008); now=2010.
	rho := opts.RhoRecency
	want := math.Exp(-rho*8) + math.Exp(-rho*6) + math.Exp(-rho*4) + math.Exp(-rho*2)
	if !almostEq(pop[0], want, 1e-12) {
		t.Errorf("pop[0] = %v, want %v", pop[0], want)
	}
	if pop[5] != 0 || pop[6] != 0 {
		t.Errorf("uncited articles have popularity: %v %v", pop[5], pop[6])
	}
}

func TestPopularityNoDecayIsCitationCount(t *testing.T) {
	net := fixture(t)
	opts := DefaultOptions()
	opts.DisableTimeDecay = true
	pop := computePopularity(net, opts.effective())
	in := net.Citations.InDegrees()
	for i := range pop {
		if !almostEq(pop[i], float64(in[i]), 1e-12) {
			t.Errorf("pop[%d] = %v, in-degree %d", i, pop[i], in[i])
		}
	}
}

func TestPrestigeNoDecayEqualsPlainPageRank(t *testing.T) {
	net := fixture(t)
	opts := DefaultOptions()
	opts.DisableTimeDecay = true
	opts = opts.effective()
	gapTrans, err := NewEngine(net).gapTransition(opts.RhoGap, nil)
	if err != nil {
		t.Fatal(err)
	}
	prestige, _, err := computePrestige(net.SolverView(), opts, gapTrans, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := rank.PageRank(net.Citations, rank.PageRankOptions{Damping: opts.Damping})
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxDiff(prestige, pr.Scores); d > 1e-9 {
		t.Errorf("no-decay prestige deviates from PageRank by %v", d)
	}
}

func TestGapWeightedGraph(t *testing.T) {
	net := fixture(t)
	g, err := gapWeightedGraph(net, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// p4(2008)->p0(2000): gap 8; p4->p2(2004): gap 4. The fresher
	// citation must carry more weight.
	wOld := g.Weight(4, 0)
	wNew := g.Weight(4, 2)
	if wNew <= wOld {
		t.Errorf("gap weighting inverted: new %v <= old %v", wNew, wOld)
	}
	if !almostEq(wOld, math.Exp(-0.2*8), 1e-12) {
		t.Errorf("wOld = %v", wOld)
	}
	// rho = 0 reproduces unit weights.
	g0, err := gapWeightedGraph(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := g0.Weight(4, 0); w != 1 {
		t.Errorf("rho=0 weight = %v", w)
	}
}

func TestHeteroColdStartAuthorInheritance(t *testing.T) {
	net := fixture(t)
	opts := DefaultOptions()
	view := net.SolverView()
	h, stats, err := computeHetero(view, opts, sparse.NewTransition(view.Citations, nil), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("hetero did not converge: %+v", stats)
	}
	// p5 (star author, uncited) must beat p6 (bare, uncited, same year):
	// the only difference is author-track-record inheritance.
	if h[5] <= h[6] {
		t.Errorf("author inheritance missing: h[5]=%v h[6]=%v", h[5], h[6])
	}
}

func TestPrestigeFadeDemotesOldArticles(t *testing.T) {
	net := fixture(t)
	noFade := DefaultOptions()
	noFade.RhoFade = 0
	faded := DefaultOptions()
	faded.RhoFade = 0.5
	a, err := Rank(net, noFade)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(net, faded)
	if err != nil {
		t.Fatal(err)
	}
	// p0 (2000) is 10 years older than p5 (2010): fading must shrink
	// p0's prestige relative to p5's.
	relNoFade := a.Prestige[0] / a.Prestige[5]
	relFaded := b.Prestige[0] / b.Prestige[5]
	if relFaded >= relNoFade {
		t.Errorf("fade did not demote old prestige: %v vs %v", relFaded, relNoFade)
	}
	// Fading by exp(-rho·age) with age(p5)=0 leaves p5 untouched.
	if math.Abs(b.Prestige[5]-a.Prestige[5]) > 1e-12 {
		t.Errorf("fade changed newest article: %v vs %v", b.Prestige[5], a.Prestige[5])
	}
}

func TestAblationSwitches(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableAuthors = true
	opts.DisableVenues = true
	eff := opts.effective()
	if eff.LambdaAuthor != 0 || eff.LambdaVenue != 0 {
		t.Errorf("layers not disabled: %+v", eff)
	}
	sum := eff.LambdaCite + eff.LambdaAuthor + eff.LambdaVenue + eff.LambdaTime
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("effective lambdas sum to %v", sum)
	}
	net := fixture(t)
	if _, err := Rank(net, opts); err != nil {
		t.Errorf("ablated rank failed: %v", err)
	}
}

func TestEnsembleOrderingInequality(t *testing.T) {
	// For equal weights, harmonic <= geometric <= arithmetic
	// elementwise (classical mean inequality), up to the epsilon
	// regularisation.
	net := fixture(t)
	var res [3][]float64
	for i, kind := range []EnsembleKind{Harmonic, Geometric, Arithmetic} {
		opts := DefaultOptions()
		opts.Ensemble = kind
		sc, err := Rank(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		res[i] = sc.Importance
	}
	for i := range res[0] {
		if res[0][i] > res[1][i]+1e-6 || res[1][i] > res[2][i]+1e-6 {
			t.Errorf("mean inequality violated at %d: H=%v G=%v A=%v",
				i, res[0][i], res[1][i], res[2][i])
		}
	}
}

func TestEnsembleWeightsShiftRanking(t *testing.T) {
	net := fixture(t)
	prestigeOnly := DefaultOptions()
	prestigeOnly.Ensemble = Arithmetic
	prestigeOnly.WPrestige, prestigeOnly.WPopularity, prestigeOnly.WHetero = 1, 0, 0
	popOnly := DefaultOptions()
	popOnly.Ensemble = Arithmetic
	popOnly.WPrestige, popOnly.WPopularity, popOnly.WHetero = 0, 1, 0
	a, err := Rank(net, prestigeOnly)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(net, popOnly)
	if err != nil {
		t.Fatal(err)
	}
	// Prestige-only equals the normalised prestige signal (rank
	// percentiles under the default normalisation).
	pn := eval.Percentiles(a.Prestige)
	if d := sparse.MaxDiff(a.Importance, pn); d > 1e-12 {
		t.Errorf("prestige-only deviates from prestige percentiles by %v", d)
	}
	qn := eval.Percentiles(b.Popularity)
	if d := sparse.MaxDiff(b.Importance, qn); d > 1e-12 {
		t.Errorf("popularity-only deviates from popularity percentiles by %v", d)
	}
}

func TestEnsembleKindString(t *testing.T) {
	if Harmonic.String() != "harmonic" || Arithmetic.String() != "arithmetic" || Geometric.String() != "geometric" {
		t.Error("ensemble names wrong")
	}
	if EnsembleKind(42).String() == "" {
		t.Error("unknown kind has empty name")
	}
}
