package core

import (
	"errors"
	"testing"

	"scholarrank/internal/corpus"
	"scholarrank/internal/gen"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// genNetwork generates an n-article synthetic corpus and its network.
func genNetwork(t testing.TB, n int) (*corpus.Store, *hetnet.Network) {
	t.Helper()
	c, err := gen.Generate(gen.NewDefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return c.Store, hetnet.Build(c.Store)
}

// growByCitations thaws the store and adds a small citation delta:
// each of the last k articles gains one extra citation into article 0.
func growByCitations(t testing.TB, s *corpus.Store, k int) *corpus.Store {
	t.Helper()
	b := s.Thaw()
	n := b.NumArticles()
	added := 0
	for i := n - 1; i > 0 && added < k; i-- {
		if err := b.AddCitation(corpus.ArticleID(i), 0); err == nil {
			added++
		}
	}
	if added == 0 {
		t.Fatal("no citations added")
	}
	return b.Freeze()
}

// TestWarmStartMatchesCold is the warm-start correctness contract:
// seeding the power iteration with a previous (smaller) solution must
// converge to the same scores as a cold solve on the merged corpus.
func TestWarmStartMatchesCold(t *testing.T) {
	store, net := genNetwork(t, 400)
	opts := DefaultOptions()
	opts.Iter = sparse.IterOptions{Tol: 1e-12, MaxIter: 500}
	prev, err := Rank(net, opts)
	if err != nil {
		t.Fatal(err)
	}

	grown := growByCitations(t, store, 25)
	grownNet := hetnet.Grow(net, grown)

	cold, err := Rank(grownNet, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.InitialScores = FromScores(prev, grown.NumArticles())
	warm, err := Rank(grownNet, warmOpts)
	if err != nil {
		t.Fatal(err)
	}

	if !warm.PrestigeStats.Converged || !warm.HeteroStats.Converged {
		t.Fatalf("warm solve did not converge: %+v %+v", warm.PrestigeStats, warm.HeteroStats)
	}
	for name, pair := range map[string][2][]float64{
		"Importance": {warm.Importance, cold.Importance},
		"Prestige":   {warm.Prestige, cold.Prestige},
		"Popularity": {warm.Popularity, cold.Popularity},
		"Hetero":     {warm.Hetero, cold.Hetero},
	} {
		if d := sparse.MaxDiff(pair[0], pair[1]); d > 1e-8 {
			t.Errorf("%s: warm deviates from cold by %v", name, d)
		}
	}
}

// TestWarmStartSavesIterations shows the point of warm starting: on a
// small delta the seeded solve needs strictly fewer sweeps than a
// cold one.
func TestWarmStartSavesIterations(t *testing.T) {
	store, net := genNetwork(t, 400)
	opts := DefaultOptions()
	prev, err := Rank(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	grown := growByCitations(t, store, 10)
	grownNet := hetnet.Grow(net, grown)

	cold, err := Rank(grownNet, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.InitialScores = FromScores(prev, grown.NumArticles())
	warm, err := Rank(grownNet, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	coldIters := cold.PrestigeStats.Iterations + cold.HeteroStats.Iterations
	warmIters := warm.PrestigeStats.Iterations + warm.HeteroStats.Iterations
	if warmIters >= coldIters {
		t.Errorf("warm start saved nothing: warm %d iters, cold %d", warmIters, coldIters)
	}
	t.Logf("iterations: cold %d (prestige %d + hetero %d), warm %d (prestige %d + hetero %d)",
		coldIters, cold.PrestigeStats.Iterations, cold.HeteroStats.Iterations,
		warmIters, warm.PrestigeStats.Iterations, warm.HeteroStats.Iterations)
}

// TestInitialScoresValidation covers the failure modes of an explicit
// seed: wrong length errors, zero mass degrades to a cold start.
func TestInitialScoresValidation(t *testing.T) {
	net := fixture(t)
	opts := DefaultOptions()
	opts.InitialScores = &InitialScores{Prestige: []float64{1, 2}}
	if _, err := Rank(net, opts); !errors.Is(err, ErrBadOptions) {
		t.Errorf("short prestige seed: err = %v, want ErrBadOptions", err)
	}
	opts.InitialScores = &InitialScores{Hetero: []float64{1, 2}}
	if _, err := Rank(net, opts); !errors.Is(err, ErrBadOptions) {
		t.Errorf("short hetero seed: err = %v, want ErrBadOptions", err)
	}

	cold, err := Rank(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zeros := make([]float64, net.NumArticles())
	opts.InitialScores = &InitialScores{Prestige: zeros, Hetero: zeros}
	warm, err := Rank(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxDiff(cold.Importance, warm.Importance); d > 1e-12 {
		t.Errorf("zero-mass seed deviates from cold by %v", d)
	}

	if FromScores(nil, 3) != nil {
		t.Error("FromScores(nil) != nil")
	}
	init := FromScores(cold, net.NumArticles()+2)
	if len(init.Prestige) != net.NumArticles()+2 || len(init.Hetero) != net.NumArticles()+2 {
		t.Errorf("FromScores lengths = %d/%d", len(init.Prestige), len(init.Hetero))
	}
}

// BenchmarkWarmStartDelta measures the re-solve cost after a small
// citation delta, cold versus warm-seeded from the previous solution.
func BenchmarkWarmStartDelta(b *testing.B) {
	store, net := genNetwork(b, 2000)
	opts := DefaultOptions()
	opts.Workers = 1
	prev, err := Rank(net, opts)
	if err != nil {
		b.Fatal(err)
	}
	grown := growByCitations(b, store, 20)
	grownNet := hetnet.Grow(net, grown)
	warmOpts := opts
	warmOpts.InitialScores = FromScores(prev, grown.NumArticles())

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Rank(grownNet, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Rank(grownNet, warmOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
