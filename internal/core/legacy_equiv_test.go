package core

import (
	"fmt"
	"testing"

	"scholarrank/internal/sparse"
)

// This file pins the scorer refactor: Engine.Rank, now a dispatch
// through the registered default scorer, must reproduce the
// pre-refactor fused pipeline to 1e-12 — including the warm-cache
// behaviour across repeated solves and RhoGap changes.

// legacyEngine replicates the pre-refactor Engine: the same cached
// substrate, but with the warm-start vectors held in the old
// per-RhoGap prestige map plus single hetero slot.
type legacyEngine struct {
	eng          *Engine
	warmPrestige map[float64][]float64
	warmHetero   []float64
}

// rank is the pre-refactor Engine.Rank body, verbatim modulo the warm
// caches living on the harness — the equivalence oracle.
func (l *legacyEngine) rank(opts Options) (*Scores, error) {
	e := l.eng
	opts = opts.effective()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if e.net.NumArticles() == 0 {
		return &Scores{
			PrestigeStats: sparse.IterStats{Converged: true},
			HeteroStats:   sparse.IterStats{Converged: true},
		}, nil
	}
	pool := e.ensurePool(opts.Workers)
	perm := e.view.Perm()
	gapTrans, err := e.gapTransition(opts.RhoGap, pool)
	if err != nil {
		return nil, err
	}
	initPrestige, err := warmVector(opts.InitialScores.prestige(), l.warmPrestige[opts.RhoGap], e.net.NumArticles(), perm)
	if err != nil {
		return nil, fmt.Errorf("core: prestige warm start: %w", err)
	}
	initHetero, err := warmVector(opts.InitialScores.hetero(), l.warmHetero, e.net.NumArticles(), perm)
	if err != nil {
		return nil, fmt.Errorf("core: hetero warm start: %w", err)
	}
	rawSolver, pStats, err := computePrestige(e.view, opts, gapTrans, nil, initPrestige)
	if err != nil {
		return nil, err
	}
	l.warmPrestige[opts.RhoGap] = rawSolver
	rawPrestige := perm.Restored(rawSolver)
	prestige, err := applyFade(e.net, opts, rawPrestige)
	if err != nil {
		return nil, err
	}
	popularity := computePopularity(e.net, opts)
	heteroSolver, hStats, err := computeHetero(e.view, opts, e.citationTransition(pool), nil, pool, initHetero)
	if err != nil {
		return nil, err
	}
	l.warmHetero = heteroSolver
	hetero := perm.Restored(heteroSolver)
	importance, err := combine(opts, prestige, popularity, hetero)
	if err != nil {
		return nil, err
	}
	return &Scores{
		Importance:    importance,
		Prestige:      prestige,
		Popularity:    popularity,
		Hetero:        hetero,
		RawPrestige:   rawPrestige,
		PrestigeStats: pStats,
		HeteroStats:   hStats,
		Pool:          pool.Stats(),
	}, nil
}

// TestDefaultScorerMatchesLegacyRank drives the refactored engine and
// the legacy oracle through the same solve sequence — cold, warm
// repeat, a RhoGap change, a return to the cached RhoGap, and an
// explicit InitialScores seed — and requires every score vector to
// agree within 1e-12 (and the solvers to take identical iteration
// counts, the sharper form of "the same computation ran").
func TestDefaultScorerMatchesLegacyRank(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		_, permNet, _ := genPermutedNetwork(t, 400, seed)
		eng := NewEngine(permNet)
		leg := &legacyEngine{eng: NewEngine(permNet), warmPrestige: map[float64][]float64{}}

		base := DefaultOptions()
		base.Workers = 1
		base.Iter = sparse.IterOptions{Tol: 1e-12, MaxIter: 2000}
		shifted := base
		shifted.RhoGap = 0.3

		steps := []struct {
			name string
			opts Options
		}{
			{"cold", base},
			{"warm repeat", base},
			{"rho-gap change", shifted},
			{"cached rho-gap return", base},
		}
		var last *Scores
		for _, step := range steps {
			got, err := eng.Rank(step.opts)
			if err != nil {
				t.Fatalf("seed %d %s: refactored: %v", seed, step.name, err)
			}
			want, err := leg.rank(step.opts)
			if err != nil {
				t.Fatalf("seed %d %s: legacy: %v", seed, step.name, err)
			}
			compareLegacy(t, fmt.Sprintf("seed %d %s", seed, step.name), got, want)
			last = got
		}

		seeded := base
		seeded.InitialScores = FromScores(last, permNet.NumArticles())
		got, err := eng.Rank(seeded)
		if err != nil {
			t.Fatalf("seed %d explicit seed: refactored: %v", seed, err)
		}
		want, err := leg.rank(seeded)
		if err != nil {
			t.Fatalf("seed %d explicit seed: legacy: %v", seed, err)
		}
		compareLegacy(t, fmt.Sprintf("seed %d explicit seed", seed), got, want)

		eng.Close()
		leg.eng.Close()
	}
}

func compareLegacy(t *testing.T, label string, got, want *Scores) {
	t.Helper()
	if got.Scorer != DefaultScorer {
		t.Errorf("%s: Scorer = %q, want %q", label, got.Scorer, DefaultScorer)
	}
	for name, pair := range map[string][2][]float64{
		"Importance":  {got.Importance, want.Importance},
		"Prestige":    {got.Prestige, want.Prestige},
		"RawPrestige": {got.RawPrestige, want.RawPrestige},
		"Popularity":  {got.Popularity, want.Popularity},
		"Hetero":      {got.Hetero, want.Hetero},
	} {
		if d := sparse.MaxDiff(pair[0], pair[1]); d > 1e-12 {
			t.Errorf("%s: %s deviates from legacy engine by %v", label, name, d)
		}
	}
	if got.PrestigeStats.Iterations != want.PrestigeStats.Iterations ||
		got.HeteroStats.Iterations != want.HeteroStats.Iterations {
		t.Errorf("%s: iteration counts diverge: prestige %d vs %d, hetero %d vs %d",
			label, got.PrestigeStats.Iterations, want.PrestigeStats.Iterations,
			got.HeteroStats.Iterations, want.HeteroStats.Iterations)
	}
}
