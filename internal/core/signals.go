package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"scholarrank/internal/graph"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
	"scholarrank/internal/temporal"
)

// computePrestige runs the time-weighted PageRank stage: citation
// edges discounted by citation gap (encoded in gapTrans), teleport
// personalised toward recent articles. Everything here lives in
// solver (permuted) space — gapTrans was built from view.Citations and
// init, when non-nil, is already permuted — and the returned scores
// are likewise solver-ordered: the caller unmaps them. The returned
// scores are the raw walk result, before prestige fading. Aitken Δ²
// extrapolation runs at the cadence opts.AitkenEvery (resolved by
// effective()). A non-nil sharded decomposition of gapTrans routes
// the walk through the per-shard sweep with boundary-mass exchange;
// the fixed point is unchanged.
func computePrestige(view *hetnet.SolverView, opts Options, gapTrans *sparse.Transition, sharded *sparse.ShardedTransition, init []float64) ([]float64, sparse.IterStats, error) {
	recency, err := temporal.NewExponential(opts.RhoRecency)
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: prestige: %w", err)
	}
	teleport := rank.RecencyVector(view.Years, view.Now, recency)
	sparse.Normalize1(teleport)
	if init == nil {
		init = teleport
	}
	it := opts.iterFor(PhasePrestige)
	it.AitkenEvery = opts.AitkenEvery
	var (
		scores []float64
		stats  sparse.IterStats
	)
	if sharded != nil {
		scores, stats, err = sparse.ShardedDampedWalkFrom(sharded, opts.Damping, teleport, init, it, !opts.ShardJacobi)
	} else {
		scores, stats, err = sparse.DampedWalkFrom(gapTrans, opts.Damping, teleport, init, it)
	}
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: prestige: %w", err)
	}
	return scores, stats, nil
}

// applyFade multiplies raw prestige by exp(-RhoFade·age), returning a
// fresh slice (the raw vector is kept for warm starts).
func applyFade(net *hetnet.Network, opts Options, raw []float64) ([]float64, error) {
	if opts.RhoFade == 0 {
		return sparse.Clone(raw), nil
	}
	fade, err := temporal.NewExponential(opts.RhoFade)
	if err != nil {
		return nil, fmt.Errorf("core: prestige fade: %w", err)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v * fade.Weight(temporal.Age(net.Now, net.Years[i]))
	}
	return out, nil
}

// gapWeightFunc returns the edge-weight function exp(-rho·gap) where
// gap is the year difference between citing and cited article.
// Publication years come from a small set, so the weights are
// precomputed into a dense year-pair table indexed by per-article
// year indices — per edge the function is two array reads and a table
// lookup, no exp and no map probe. Corpora with pathologically many
// distinct years fall back to a map memoised per distinct gap.
// rho = 0 reproduces uniform weights. The yearOf slice fixes the node
// order the returned function is indexed by, so callers weighting a
// solver-space transition pass the solver-ordered years.
func gapWeightFunc(yearOf []float64, rho float64) (func(u, v int32) float64, error) {
	kernel, err := temporal.NewExponential(rho)
	if err != nil {
		return nil, fmt.Errorf("core: gap kernel: %w", err)
	}
	years := append([]float64(nil), yearOf...)
	slices.Sort(years)
	years = slices.Compact(years)
	if ny := len(years); ny*ny <= 1<<16 {
		yearIdx := make([]int32, len(yearOf))
		for i, y := range yearOf {
			yearIdx[i] = int32(sort.SearchFloat64s(years, y))
		}
		table := make([]float64, ny*ny)
		for i, yu := range years {
			for j, yv := range years {
				gap := yu - yv
				if gap < 0 {
					gap = 0 // metadata noise: citing an "in press" article
				}
				table[i*ny+j] = kernel.Weight(gap)
			}
		}
		return func(u, v int32) float64 {
			return table[int(yearIdx[u])*ny+int(yearIdx[v])]
		}, nil
	}
	lut := make(map[float64]float64)
	return func(u, v int32) float64 {
		gap := yearOf[u] - yearOf[v]
		if gap < 0 {
			gap = 0
		}
		w, ok := lut[gap]
		if !ok {
			w = kernel.Weight(gap)
			lut[gap] = w
		}
		return w
	}, nil
}

// gapWeightedGraph rebuilds the citation graph with edge weights
// exp(-rho·gap). The Engine derives gap-weighted transitions with
// Transition.Reweighted instead; this full rebuild is kept as the
// reference implementation the equivalence tests check against.
func gapWeightedGraph(net *hetnet.Network, rho float64) (*graph.Graph, error) {
	weight, err := gapWeightFunc(net.Years, rho)
	if err != nil {
		return nil, err
	}
	src := net.Citations
	b := graph.NewBuilder(src.NumNodes(), true)
	var addErr error
	src.VisitEdges(func(u, v graph.NodeID, _ float64) {
		if err := b.AddWeightedEdge(u, v, weight(int32(u), int32(v))); err != nil && addErr == nil {
			addErr = err
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build(), nil
}

// computePopularity scores each article by the decayed citation
// intensity Σ_{i→j} exp(-rho·(now - t_i)): how much *current*
// attention flows into it. With rho = 0 it degrades to the raw
// citation count. The decay weight depends only on the citing
// article's publication year, so it is computed once per distinct
// year and looked up per edge instead of paying an exp per edge.
func computePopularity(net *hetnet.Network, opts Options) []float64 {
	kernel := temporal.Exponential{Rho: opts.RhoRecency}
	n := net.NumArticles()
	decay := make(map[float64]float64)
	weightOf := make([]float64, n)
	for i, y := range net.Years {
		w, ok := decay[y]
		if !ok {
			w = kernel.Weight(temporal.Age(net.Now, y))
			decay[y] = w
		}
		weightOf[i] = w
	}
	pop := make([]float64, n)
	net.Citations.VisitEdges(func(u, v graph.NodeID, _ float64) {
		pop[v] += weightOf[u]
	})
	return pop
}

// computeHetero runs the coupled article–author–venue walk with a
// recency restart:
//
//	x' = λc·(Mᵀx + dangling·r) + λa·S_A(G_A(x)) + λv·S_V(G_V(x)) + λt·r
//
// Mass leaked by articles missing authors or venues is routed through
// r. λt > 0 makes the map a strict contraction toward r, so the
// iteration converges for any starting distribution.
// The iteration body is fused: the author/venue layers are gathered
// through pull-form pooled kernels (pre-scaled by the spread shares),
// then a single BlendStep sweep combines the citation mat-vec,
// dangling and leak restarts, the inline layer spread (read straight
// from the article→authors CSR and venue index, never materialised),
// output sum, and next iteration's dangling mass, and ScaleDiffStep
// folds the normalisation into the residual pass.
//
// Like the prestige stage the walk runs in solver space: t was built
// from view.Citations, the view's bipartite layers carry solver
// article ids, and the returned vector is solver-ordered. The
// opts.HeteroRelTol schedule (when set) relaxes the stopping
// tolerance relative to the first iteration's residual.
//
// A non-nil sharded decomposition of t replaces the fused BlendStep
// with the per-shard BlendSweep: the citation mat-vec and its
// boundary exchange run shard by shard, while the author/venue layer
// coupling stays barrier-synchronous (gathered from src before the
// sweep) under either schedule — the fixed point is unchanged.
func computeHetero(view *hetnet.SolverView, opts Options, t *sparse.Transition, sharded *sparse.ShardedTransition, pool *sparse.Pool, init []float64) ([]float64, sparse.IterStats, error) {
	n := view.NumArticles()
	recency, err := temporal.NewExponential(opts.RhoRecency)
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: hetero: %w", err)
	}
	r := rank.RecencyVector(view.Years, view.Now, recency)
	sparse.Normalize1(r)

	var authors, venues []float64
	var authorLayer *sparse.AuxGather
	var venueLayer *sparse.AuxLookup
	if opts.LambdaAuthor > 0 {
		authors = make([]float64, view.NumAuthors())
		authorLayer = view.AuthorBlendLayer(authors)
	}
	if opts.LambdaVenue > 0 {
		venues = make([]float64, view.NumVenues())
		venueLayer = view.VenueBlendLayer(venues)
	}

	if init == nil {
		init = make([]float64, n)
		sparse.Uniform(init)
	}
	var step func(dst, src []float64) float64
	var exchBefore uint64
	if sharded != nil {
		exchBefore = sharded.Exchanges()
		dang := make([]float64, sharded.NumShards())
		sharded.SeedDangling(init, dang)
		step = func(dst, src []float64) float64 {
			var aLeak, vLeak float64
			if opts.LambdaAuthor > 0 {
				aLeak = view.GatherArticlesToAuthorsScaledPar(pool, authors, src)
			}
			if opts.LambdaVenue > 0 {
				vLeak = view.GatherArticlesToVenuesScaledPar(pool, venues, src)
			}
			sum := sharded.BlendSweep(dst, src, r, authorLayer, venueLayer,
				opts.LambdaCite, opts.LambdaAuthor, opts.LambdaVenue, opts.LambdaTime,
				aLeak, vLeak, !opts.ShardJacobi, dang)
			inv := 1.0
			if sum != 0 && !math.IsNaN(sum) && !math.IsInf(sum, 0) {
				inv = 1 / sum
			}
			res := t.ScaleDiffStep(dst, src, inv)
			for s := range dang {
				dang[s] *= inv
			}
			return res
		}
	} else {
		dm := t.DanglingMass(init) // seeds the pipelined dangling mass
		step = func(dst, src []float64) float64 {
			var aLeak, vLeak float64
			if opts.LambdaAuthor > 0 {
				aLeak = view.GatherArticlesToAuthorsScaledPar(pool, authors, src)
			}
			if opts.LambdaVenue > 0 {
				vLeak = view.GatherArticlesToVenuesScaledPar(pool, venues, src)
			}
			sum, dangNext := t.BlendStep(dst, src, r, authorLayer, venueLayer,
				opts.LambdaCite, opts.LambdaAuthor, opts.LambdaVenue, opts.LambdaTime,
				dm, aLeak, vLeak)
			inv := 1.0
			if sum != 0 && !math.IsNaN(sum) && !math.IsInf(sum, 0) {
				inv = 1 / sum
			}
			res := t.ScaleDiffStep(dst, src, inv)
			dm = dangNext * inv
			return res
		}
	}
	it := opts.iterFor(PhaseHetero)
	if opts.HeteroRelTol > 0 {
		it.RelTol = opts.HeteroRelTol
	}
	scores, stats, err := sparse.FixedPointResidual(init, step, it)
	if err != nil {
		return nil, sparse.IterStats{}, err
	}
	if sharded != nil {
		stats.Exchanges = int(sharded.Exchanges() - exchBefore)
	}
	return scores, stats, nil
}
