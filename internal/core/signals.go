package core

import (
	"fmt"

	"scholarrank/internal/graph"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
	"scholarrank/internal/temporal"
)

// computePrestige runs the time-weighted PageRank stage: citation
// edges discounted by citation gap (encoded in gapTrans), teleport
// personalised toward recent articles. init may be a previous
// solution (warm start) or nil. The returned scores are the raw walk
// result, before prestige fading.
func computePrestige(net *hetnet.Network, opts Options, gapTrans *sparse.Transition, init []float64) ([]float64, sparse.IterStats, error) {
	recency, err := temporal.NewExponential(opts.RhoRecency)
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: prestige: %w", err)
	}
	teleport := rank.RecencyVector(net.Years, net.Now, recency)
	sparse.Normalize1(teleport)
	if init == nil {
		init = teleport
	}
	scores, stats, err := sparse.DampedWalkFrom(gapTrans, opts.Damping, teleport, init, opts.Iter)
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: prestige: %w", err)
	}
	return scores, stats, nil
}

// applyFade multiplies raw prestige by exp(-RhoFade·age), returning a
// fresh slice (the raw vector is kept for warm starts).
func applyFade(net *hetnet.Network, opts Options, raw []float64) ([]float64, error) {
	if opts.RhoFade == 0 {
		return sparse.Clone(raw), nil
	}
	fade, err := temporal.NewExponential(opts.RhoFade)
	if err != nil {
		return nil, fmt.Errorf("core: prestige fade: %w", err)
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v * fade.Weight(temporal.Age(net.Now, net.Years[i]))
	}
	return out, nil
}

// gapWeightedGraph rebuilds the citation graph with edge weights
// exp(-rho·gap) where gap is the year difference between citing and
// cited article. rho = 0 reproduces the unweighted graph.
func gapWeightedGraph(net *hetnet.Network, rho float64) (*graph.Graph, error) {
	kernel, err := temporal.NewExponential(rho)
	if err != nil {
		return nil, fmt.Errorf("core: gap kernel: %w", err)
	}
	src := net.Citations
	b := graph.NewBuilder(src.NumNodes(), true)
	var addErr error
	src.VisitEdges(func(u, v graph.NodeID, _ float64) {
		gap := net.Years[u] - net.Years[v]
		if gap < 0 {
			gap = 0 // metadata noise: citing an "in press" article
		}
		if err := b.AddWeightedEdge(u, v, kernel.Weight(gap)); err != nil && addErr == nil {
			addErr = err
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build(), nil
}

// computePopularity scores each article by the decayed citation
// intensity Σ_{i→j} exp(-rho·(now - t_i)): how much *current*
// attention flows into it. With rho = 0 it degrades to the raw
// citation count.
func computePopularity(net *hetnet.Network, opts Options) []float64 {
	kernel := temporal.Exponential{Rho: opts.RhoRecency}
	n := net.NumArticles()
	pop := make([]float64, n)
	net.Citations.VisitEdges(func(u, v graph.NodeID, _ float64) {
		pop[v] += kernel.Weight(temporal.Age(net.Now, net.Years[u]))
	})
	return pop
}

// computeHetero runs the coupled article–author–venue walk with a
// recency restart:
//
//	x' = λc·(Mᵀx + dangling·r) + λa·S_A(G_A(x)) + λv·S_V(G_V(x)) + λt·r
//
// Mass leaked by articles missing authors or venues is routed through
// r. λt > 0 makes the map a strict contraction toward r, so the
// iteration converges for any starting distribution.
func computeHetero(net *hetnet.Network, opts Options, t *sparse.Transition, init []float64) ([]float64, sparse.IterStats, error) {
	n := net.NumArticles()
	recency, err := temporal.NewExponential(opts.RhoRecency)
	if err != nil {
		return nil, sparse.IterStats{}, fmt.Errorf("core: hetero: %w", err)
	}
	r := rank.RecencyVector(net.Years, net.Now, recency)
	sparse.Normalize1(r)

	authors := make([]float64, net.NumAuthors())
	venues := make([]float64, net.NumVenues())
	fromAuthors := make([]float64, n)
	fromVenues := make([]float64, n)

	step := func(dst, src []float64) {
		t.MulVec(dst, src)
		dm := t.DanglingMass(src)
		var aLeak, vLeak float64
		if opts.LambdaAuthor > 0 {
			aLeak = net.GatherArticlesToAuthors(authors, src)
			net.SpreadAuthorsToArticles(fromAuthors, authors)
		}
		if opts.LambdaVenue > 0 {
			vLeak = net.GatherArticlesToVenues(venues, src)
			net.SpreadVenuesToArticles(fromVenues, venues)
		}
		for i := range dst {
			cite := dst[i] + dm*r[i]
			x := opts.LambdaCite*cite + opts.LambdaTime*r[i]
			if opts.LambdaAuthor > 0 {
				x += opts.LambdaAuthor * (fromAuthors[i] + aLeak*r[i])
			}
			if opts.LambdaVenue > 0 {
				x += opts.LambdaVenue * (fromVenues[i] + vLeak*r[i])
			}
			dst[i] = x
		}
		sparse.Normalize1(dst)
	}
	if init == nil {
		init = make([]float64, n)
		sparse.Uniform(init)
	}
	scores, stats, err := sparse.FixedPoint(init, step, opts.Iter)
	if err != nil {
		return nil, sparse.IterStats{}, err
	}
	return scores, stats, nil
}
