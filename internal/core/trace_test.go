package core

import (
	"testing"

	"scholarrank/internal/corpus"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// quickstartNetwork mirrors examples/quickstart: a miniature
// literature of five articles across two authors and one venue.
func quickstartNetwork(t *testing.T) *hetnet.Network {
	t.Helper()
	s := corpus.NewBuilder()
	hopper, _ := s.InternAuthor("hopper", "G. Hopper")
	lovelace, _ := s.InternAuthor("lovelace", "A. Lovelace")
	icde, _ := s.InternVenue("icde", "ICDE")
	add := func(key string, year int, venue corpus.VenueID, authors ...corpus.AuthorID) corpus.ArticleID {
		id, err := s.AddArticle(corpus.ArticleMeta{Key: key, Year: year, Venue: venue, Authors: authors})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	found := add("found98", 1998, icde, hopper)
	walk := add("walk04", 2004, icde, hopper, lovelace)
	time06 := add("time06", 2006, corpus.NoVenue, lovelace)
	survey := add("survey15", 2015, icde, lovelace)
	add("fresh17", 2017, icde, hopper)
	for _, c := range [][2]corpus.ArticleID{
		{walk, found}, {time06, found}, {time06, walk}, {survey, found},
	} {
		if err := s.AddCitation(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	return hetnet.Build(s.Freeze())
}

// TestTraceHook runs QISA-Rank on the quickstart corpus with the
// Trace hook installed and checks the event stream: both phases
// report, iterations are sequential, residuals are monotonically
// non-increasing within each phase (both stages are strict
// contractions), and each phase's final residual matches the stats.
func TestTraceHook(t *testing.T) {
	net := quickstartNetwork(t)
	var events []TraceEvent
	opts := DefaultOptions()
	opts.Trace = func(ev TraceEvent) { events = append(events, ev) }
	sc, err := Rank(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	byPhase := map[string][]TraceEvent{}
	for _, ev := range events {
		byPhase[ev.Phase] = append(byPhase[ev.Phase], ev)
	}
	if len(byPhase) != 2 {
		t.Fatalf("phases traced = %v, want prestige and hetero", len(byPhase))
	}
	finals := map[string]float64{
		PhasePrestige: sc.PrestigeStats.Residual,
		PhaseHetero:   sc.HeteroStats.Residual,
	}
	iters := map[string]int{
		PhasePrestige: sc.PrestigeStats.Iterations,
		PhaseHetero:   sc.HeteroStats.Iterations,
	}
	for phase, evs := range byPhase {
		if len(evs) == 0 {
			t.Fatalf("no events for phase %s", phase)
		}
		if len(evs) != iters[phase] {
			t.Errorf("%s: %d events for %d iterations", phase, len(evs), iters[phase])
		}
		for i, ev := range evs {
			if ev.Iteration != i+1 {
				t.Errorf("%s: event %d has iteration %d", phase, i, ev.Iteration)
			}
			// Strict contractions shrink the residual every step;
			// allow a hair of floating-point slack.
			if i > 0 && ev.Residual > evs[i-1].Residual*(1+1e-9) {
				t.Errorf("%s: residual increased at iteration %d: %v > %v",
					phase, ev.Iteration, ev.Residual, evs[i-1].Residual)
			}
		}
		last := evs[len(evs)-1]
		if last.Residual != finals[phase] {
			t.Errorf("%s: final event residual %v != stats residual %v",
				phase, last.Residual, finals[phase])
		}
		if first := evs[0].Residual; last.Residual > first {
			t.Errorf("%s: final residual %v above first %v", phase, last.Residual, first)
		}
	}
	if sc.Pool.Workers < 1 {
		t.Errorf("pool stats workers = %d", sc.Pool.Workers)
	}
	if sc.PrestigeStats.Elapsed <= 0 || sc.HeteroStats.Elapsed <= 0 {
		t.Errorf("phase wall times not recorded: %v / %v",
			sc.PrestigeStats.Elapsed, sc.HeteroStats.Elapsed)
	}
}

// TestTracePreservesDirectHook checks that a hook installed straight
// on Iter.OnIteration still fires when Options.Trace is unset.
func TestTracePreservesDirectHook(t *testing.T) {
	net := quickstartNetwork(t)
	opts := DefaultOptions()
	fired := 0
	opts.Iter.OnIteration = func(sparse.IterEvent) { fired++ }
	if _, err := Rank(net, opts); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Error("direct Iter.OnIteration hook never fired")
	}
}
