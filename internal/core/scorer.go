package core

import (
	"errors"
	"fmt"
	"sort"

	"scholarrank/internal/hetnet"
	"scholarrank/internal/shard"
	"scholarrank/internal/sparse"
)

// ErrUnknownScorer reports a scorer name absent from the registry.
var ErrUnknownScorer = errors.New("core: unknown scorer")

// DefaultScorer is the registry name of the full QISA-Rank pipeline —
// the composite that folds prestige, popularity and the heterogeneous
// walk into one importance score. Engine.Rank is shorthand for
// RankScorer(DefaultScorer, nil, opts).
const DefaultScorer = "default"

// Scorer is one query-independent ranking algorithm over the academic
// network. Implementations read everything they need — the solver
// view, cached transition operators, warm-start vectors, iteration
// options with trace hooks bound — from the SolveContext, and return
// the importance vector in original article order (use
// SolveContext.Restore on solver-space vectors). A scorer that also
// produces component signals or solver statistics deposits them with
// SolveContext.SetComponents.
//
// Implementations must be stateless across Score calls or safe for
// reuse: the registry constructs one instance per RankScorer call,
// but Engine.RankWith may be handed a long-lived instance.
type Scorer interface {
	// Name returns the scorer's registry name.
	Name() string
	// Score computes the importance vector for the context's network.
	Score(ctx *SolveContext) ([]float64, error)
}

// ScorerOptions is a scorer's option bag: named numeric knobs
// supplied at construction, so every scorer is configurable through
// one uniform surface (-scorer-opt flags, snapshot metadata, the
// leaderboard). A nil bag selects every default.
type ScorerOptions map[string]float64

// Get returns the value for key, or def when the bag is nil or the
// key is absent.
func (o ScorerOptions) Get(key string, def float64) float64 {
	if v, ok := o[key]; ok {
		return v
	}
	return def
}

// Clone returns a copy of the bag; nil stays nil.
func (o ScorerOptions) Clone() ScorerOptions {
	if o == nil {
		return nil
	}
	c := make(ScorerOptions, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

// checkKeys errors on any key outside the known set — a typo in a
// -scorer-opt flag should fail construction, not be ignored.
func (o ScorerOptions) checkKeys(scorer string, known ...string) error {
	for k := range o {
		ok := false
		for _, want := range known {
			if k == want {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: scorer %q has no option %q (known: %v)", ErrBadOptions, scorer, k, known)
		}
	}
	return nil
}

// ScorerFactory constructs a scorer from its option bag, validating
// option names and ranges.
type ScorerFactory func(opts ScorerOptions) (Scorer, error)

type scorerEntry struct {
	doc     string
	factory ScorerFactory
}

// scorerRegistry maps scorer names to factories. It is populated from
// package init functions and read-only afterwards, so no lock.
var scorerRegistry = map[string]scorerEntry{}

// RegisterScorer adds a scorer factory under name with a one-line
// description. It is intended for package init time and panics on a
// duplicate or empty name — both are programming errors.
func RegisterScorer(name, doc string, factory ScorerFactory) {
	if name == "" || factory == nil {
		panic("core: RegisterScorer with empty name or nil factory")
	}
	if _, dup := scorerRegistry[name]; dup {
		panic("core: duplicate scorer " + name)
	}
	scorerRegistry[name] = scorerEntry{doc: doc, factory: factory}
}

// NewScorer constructs the named scorer with the given option bag.
func NewScorer(name string, opts ScorerOptions) (Scorer, error) {
	e, ok := scorerRegistry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownScorer, name, ScorerNames())
	}
	return e.factory(opts)
}

// ScorerNames returns every registered scorer name, DefaultScorer
// first and the rest sorted — the order CLIs and the leaderboard
// present them in.
func ScorerNames() []string {
	names := make([]string, 0, len(scorerRegistry))
	for name := range scorerRegistry {
		if name != DefaultScorer {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := scorerRegistry[DefaultScorer]; ok {
		names = append([]string{DefaultScorer}, names...)
	}
	return names
}

// ScorerDoc returns the one-line description a scorer registered
// with, and whether the name is registered.
func ScorerDoc(name string) (string, bool) {
	e, ok := scorerRegistry[name]
	return e.doc, ok
}

// SolveContext is the substrate a Scorer runs against: the network
// and its solver-space projection, the engine's cached transition
// operators and warm-start vectors, the shared worker pool, and the
// validated options with trace hooks. One context serves one Score
// call; scorers must not retain it.
//
// Warm-cache keys are namespaced per scorer name, so two scorers
// sharing an engine (the leaderboard) never warm-start from each
// other's fixed points.
type SolveContext struct {
	eng    *Engine
	pool   *sparse.Pool
	opts   Options
	scorer string
	comps  *Scores
}

// Options returns the effective, validated rank options.
func (ctx *SolveContext) Options() Options { return ctx.opts }

// Network returns the wrapped network in original article order.
func (ctx *SolveContext) Network() *hetnet.Network { return ctx.eng.net }

// View returns the locality-permuted solver projection of the
// network. Iterative stages should run over it and unmap results with
// Restore.
func (ctx *SolveContext) View() *hetnet.SolverView { return ctx.eng.view }

// Pool returns the engine's worker pool, sized per Options.Workers.
func (ctx *SolveContext) Pool() *sparse.Pool { return ctx.pool }

// Perm returns the solver-space permutation.
func (ctx *SolveContext) Perm() *sparse.Permutation { return ctx.eng.view.Perm() }

// NumArticles returns the article count.
func (ctx *SolveContext) NumArticles() int { return ctx.eng.net.NumArticles() }

// CitationTransition returns the engine's cached citation transition
// operator (solver space).
func (ctx *SolveContext) CitationTransition() *sparse.Transition {
	return ctx.eng.citationTransition(ctx.pool)
}

// GapTransition returns the citation transition reweighted by
// exp(-rho·gap), cached per distinct rho (solver space).
func (ctx *SolveContext) GapTransition(rho float64) (*sparse.Transition, error) {
	return ctx.eng.gapTransition(rho, ctx.pool)
}

// ShardPlan returns the engine's cached edge-balanced partition for
// the configured shard count, or nil when the solve is unsharded
// (Options.Shards < 2).
func (ctx *SolveContext) ShardPlan() (*shard.Plan, error) {
	if ctx.opts.Shards < 2 {
		return nil, nil
	}
	return ctx.eng.shardPlan(ctx.opts.Shards)
}

// Sharded returns t's cached sharded decomposition over the
// configured partition, or nil when the solve is unsharded. Scorers
// with iterative stages route their sweeps through it when non-nil;
// the fixed point matches the single-operator solve either way.
func (ctx *SolveContext) Sharded(t *sparse.Transition) (*sparse.ShardedTransition, error) {
	if ctx.opts.Shards < 2 {
		return nil, nil
	}
	return ctx.eng.sharded(t, ctx.opts.Shards)
}

// IterFor returns the iteration options for one solver phase, with
// the Options.Trace hook (if any) bound to the phase name.
func (ctx *SolveContext) IterFor(phase string) sparse.IterOptions {
	return ctx.opts.iterFor(phase)
}

// Restore maps a solver-space vector back to original article order.
func (ctx *SolveContext) Restore(solverVec []float64) []float64 {
	return ctx.Perm().Restored(solverVec)
}

// WarmStart selects the starting vector for an iterative stage under
// the scorer-namespaced cache key: an explicit seed (original order,
// validated, L1-normalised and mapped to solver space) wins over the
// engine's cached previous solution; nil means cold start.
func (ctx *SolveContext) WarmStart(key string, explicit []float64) ([]float64, error) {
	return warmVector(explicit, ctx.eng.warm[ctx.warmKey(key)], ctx.NumArticles(), ctx.Perm())
}

// KeepWarm stores a solver-space fixed point under the
// scorer-namespaced cache key, warm-starting the next solve.
func (ctx *SolveContext) KeepWarm(key string, solverVec []float64) {
	ctx.eng.warm[ctx.warmKey(key)] = solverVec
}

func (ctx *SolveContext) warmKey(key string) string { return ctx.scorer + "/" + key }

// SetComponents deposits component signals and solver statistics on
// the result. The engine fills Importance, Scorer and Pool itself;
// any other field the scorer leaves zero stays zero.
func (ctx *SolveContext) SetComponents(sc *Scores) { ctx.comps = sc }
