package core

import (
	"slices"
	"testing"

	"scholarrank/internal/corpus"
	"scholarrank/internal/gen"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// The tests in this file pin the tentpole invariant of the locality
// pass: running the solvers over the permuted operator and unmapping
// at the boundary is indistinguishable (to roundoff) from solving in
// original article order. The unpermuted reference is obtained with
// Store.WithoutSolverPermutation, which shares all corpus columns but
// drops the solver permutation.

// genPermutedNetwork generates a synthetic corpus whose freeze-time
// permutation is non-identity, plus the identity-order reference
// network over the same columns.
func genPermutedNetwork(t testing.TB, n int, seed int64) (*corpus.Store, *hetnet.Network, *hetnet.Network) {
	t.Helper()
	cfg := gen.NewDefaultConfig(n)
	cfg.Seed = seed
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Store.SolverPermutation() == nil {
		t.Fatalf("seed %d: generated corpus froze to the identity permutation", seed)
	}
	return c.Store, hetnet.Build(c.Store), hetnet.Build(c.Store.WithoutSolverPermutation())
}

// TestRankReorderInvariant compares full QISA-Rank — prestige with
// extrapolation, popularity, the hetero blend, fade and ensemble —
// between permuted and identity-order solves of the same corpus.
func TestRankReorderInvariant(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		_, permNet, baseNet := genPermutedNetwork(t, 500, seed)
		opts := DefaultOptions()
		opts.Workers = 1
		opts.Iter = sparse.IterOptions{Tol: 1e-13, MaxIter: 2000}
		got, err := Rank(permNet, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Rank(baseNet, opts)
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2][]float64{
			"Importance":  {got.Importance, want.Importance},
			"Prestige":    {got.Prestige, want.Prestige},
			"RawPrestige": {got.RawPrestige, want.RawPrestige},
			"Popularity":  {got.Popularity, want.Popularity},
			"Hetero":      {got.Hetero, want.Hetero},
		} {
			if d := sparse.MaxDiff(pair[0], pair[1]); d > 1e-12 {
				t.Errorf("seed %d: %s deviates from identity-order solve by %v", seed, name, d)
			}
		}
	}
}

// TestPrestigeReorderInvariant isolates the prestige stage (the walk
// the reordering primarily exists for), with extrapolation both off
// and at the default cadence.
func TestPrestigeReorderInvariant(t *testing.T) {
	_, permNet, baseNet := genPermutedNetwork(t, 800, 4)
	for _, aitken := range []int{-1, 0} {
		opts := DefaultOptions()
		opts.Workers = 1
		opts.AitkenEvery = aitken
		opts.Iter = sparse.IterOptions{Tol: 1e-13, MaxIter: 2000}
		got, err := Rank(permNet, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Rank(baseNet, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.MaxDiff(got.RawPrestige, want.RawPrestige); d > 1e-12 {
			t.Errorf("aitken=%d: raw prestige deviates by %v", aitken, d)
		}
	}
}

// growFlippingHubs thaws the store and pours citations into the last
// article, so the re-frozen corpus gets a materially different
// hub-first permutation.
func growFlippingHubs(t testing.TB, s *corpus.Store) *corpus.Store {
	t.Helper()
	b := s.Thaw()
	n := b.NumArticles()
	last := corpus.ArticleID(n - 1)
	for i := 0; i < n-1; i++ {
		_ = b.AddCitation(corpus.ArticleID(i), last) // duplicates merge in the graph build
	}
	return b.Freeze()
}

// TestWarmStartAcrossPermutationChange is the warm-start leg of the
// invariant: scores solved under one permutation seed a solve under a
// different permutation (the delta re-shapes the hubs), and the
// warm-started result must match a cold solve on the grown corpus.
func TestWarmStartAcrossPermutationChange(t *testing.T) {
	store, permNet, _ := genPermutedNetwork(t, 500, 5)
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Iter = sparse.IterOptions{Tol: 1e-13, MaxIter: 2000}
	prev, err := Rank(permNet, opts)
	if err != nil {
		t.Fatal(err)
	}

	grown := growFlippingHubs(t, store)
	if slices.Equal(grown.SolverPermutation().Fwd(), store.SolverPermutation().Fwd()) {
		t.Fatal("delta did not change the permutation; the test is vacuous")
	}
	grownNet := hetnet.Grow(permNet, grown)

	cold, err := Rank(grownNet, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.InitialScores = FromScores(prev, grown.NumArticles())
	warm, err := Rank(grownNet, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PrestigeStats.Converged || !warm.HeteroStats.Converged {
		t.Fatalf("warm solve did not converge: %+v %+v", warm.PrestigeStats, warm.HeteroStats)
	}
	for name, pair := range map[string][2][]float64{
		"Importance": {warm.Importance, cold.Importance},
		"Prestige":   {warm.Prestige, cold.Prestige},
		"Hetero":     {warm.Hetero, cold.Hetero},
	} {
		if d := sparse.MaxDiff(pair[0], pair[1]); d > 1e-10 {
			t.Errorf("%s: warm deviates from cold by %v", name, d)
		}
	}
}
