package core

import (
	"fmt"
	"math"

	"scholarrank/internal/sparse"
)

func init() {
	RegisterScorer(ScorerALEF,
		"article-eigenfactor variant: damped walk with dangling mass redistributed through the teleport, eigenfactor flow read-out",
		newALEFScorer)
}

// ScorerALEF is the registry name of the article-eigenfactor
// baseline.
const ScorerALEF = "alef"

// alefScorer implements the ALEF (Article-Level Eigenfactor) variant
// of the damped citation walk. Two things distinguish it from
// PageRank-as-importance:
//
//   - Dangling handling: articles with no outgoing references donate
//     their mass to the teleport distribution each sweep rather than
//     being pruned or self-looped — at scholarly-corpus dangling
//     fractions (most recent articles cite into the corpus but are
//     never cited out of it) this measurably changes the fixed point.
//     sparse.DampedWalkFrom's pipelined dangling mass implements
//     exactly this redistribution.
//
//   - Read-out: the score is not the stationary visit frequency π but
//     the eigenfactor flow Mᵀπ + dangling(π)·v — the citation mass
//     arriving at each article from the converged distribution. The
//     teleport's direct (1-d)·v "free visit" contribution is excluded,
//     so an article earns score only through actual citations, not
//     through the restart.
type alefScorer struct {
	damping float64
}

func newALEFScorer(o ScorerOptions) (Scorer, error) {
	if err := o.checkKeys(ScorerALEF, "damping"); err != nil {
		return nil, err
	}
	s := &alefScorer{damping: o.Get("damping", 0.85)}
	if s.damping <= 0 || s.damping >= 1 || math.IsNaN(s.damping) {
		return nil, fmt.Errorf("%w: alef damping %v, want (0, 1)", ErrBadOptions, s.damping)
	}
	return s, nil
}

func (s *alefScorer) Name() string { return ScorerALEF }

// alefWarmKey caches the walk's fixed point (not the flow read-out,
// which is a cheap one-sweep function of it).
const alefWarmKey = "walk"

func (s *alefScorer) Score(ctx *SolveContext) ([]float64, error) {
	opts := ctx.Options()
	n := ctx.View().NumArticles()
	t := ctx.CitationTransition()

	teleport := make([]float64, n)
	sparse.Uniform(teleport)
	init, err := ctx.WarmStart(alefWarmKey, nil)
	if err != nil {
		return nil, fmt.Errorf("core: alef: %w", err)
	}
	if init == nil {
		init = teleport
	}
	it := ctx.IterFor(PhaseALEF)
	it.AitkenEvery = opts.AitkenEvery
	x, stats, err := sparse.DampedWalkFrom(t, s.damping, teleport, init, it)
	if err != nil {
		return nil, fmt.Errorf("core: alef: %w", err)
	}
	ctx.KeepWarm(alefWarmKey, x)

	flow := make([]float64, n)
	t.MulVec(flow, x)
	dm := t.DanglingMass(x)
	for i := range flow {
		flow[i] += dm * teleport[i]
	}
	sparse.Normalize1(flow)
	ctx.SetComponents(&Scores{PrestigeStats: stats})
	return ctx.Restore(flow), nil
}
