// Package core implements QISA-Rank, the query-independent scholarly
// article ranking algorithm this repository reproduces. QISA-Rank
// combines three signals computed over the heterogeneous academic
// network:
//
//   - Prestige: a time-weighted PageRank over the citation graph.
//     Citation edges are discounted by the citation gap
//     exp(-ρ_gap·(t_citing - t_cited)) — a 30-year-old citation
//     transfers less endorsement than last year's — and the walk
//     restarts at recent articles (recency-personalised teleport), so
//     prestige must be reachable from the current research frontier.
//
//   - Popularity: the time-decayed citation intensity
//     Σ exp(-ρ_rec·(now - t_citing)) over an article's citers — the
//     "current attention" an article receives, regardless of where
//     its citers sit in the citation hierarchy.
//
//   - Hetero: a coupled random walk over articles, authors and venues
//     with a recency restart. Articles too new to have citations
//     inherit mass from their authors' and venue's track record,
//     which is the algorithm's answer to the cold-start problem.
//
// The three signals are min–max normalised and folded by a
// configurable ensemble (harmonic by default: an important article
// must score on every axis).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// ErrBadOptions reports invalid QISA-Rank parameters.
var ErrBadOptions = errors.New("core: invalid options")

// EnsembleKind selects how the normalised signals are folded into the
// final importance score.
type EnsembleKind int

// Ensemble kinds.
const (
	// Harmonic is the weighted harmonic mean: dominated by the
	// weakest signal, so importance demands prestige AND popularity.
	Harmonic EnsembleKind = iota
	// Arithmetic is the weighted arithmetic mean.
	Arithmetic
	// Geometric is the weighted geometric mean.
	Geometric
)

// String implements fmt.Stringer for experiment tables.
func (k EnsembleKind) String() string {
	switch k {
	case Harmonic:
		return "harmonic"
	case Arithmetic:
		return "arithmetic"
	case Geometric:
		return "geometric"
	default:
		return fmt.Sprintf("EnsembleKind(%d)", int(k))
	}
}

// NormKind selects the per-signal normalisation applied before the
// ensemble.
type NormKind int

// Normalisation kinds.
const (
	// NormPercentile replaces each signal by its rank percentile — a
	// Borda-style fusion, robust to heavy-tailed score distributions.
	NormPercentile NormKind = iota
	// NormMinMax linearly rescales each signal to [0, 1].
	NormMinMax
)

// String implements fmt.Stringer for experiment tables.
func (k NormKind) String() string {
	switch k {
	case NormPercentile:
		return "percentile"
	case NormMinMax:
		return "minmax"
	default:
		return fmt.Sprintf("NormKind(%d)", int(k))
	}
}

// Options configures QISA-Rank. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// RhoGap is the per-year decay of citation-edge weight with the
	// citation gap (age difference between citing and cited article).
	RhoGap float64
	// RhoRecency is the per-year decay used for the recency teleport
	// vector and the popularity signal.
	RhoRecency float64
	// RhoFade is the per-year decay applied to the prestige signal
	// itself after the walk (prestige × exp(-RhoFade·age)): accumulated
	// standing loses current value as an article ages, the
	// "current prestige" correction of the TimedPageRank line of
	// work. Zero disables fading.
	RhoFade float64
	// Damping is the prestige walk's damping factor.
	Damping float64

	// LambdaCite, LambdaAuthor, LambdaVenue and LambdaTime mix the
	// heterogeneous walk. They must be non-negative and sum to 1;
	// LambdaTime must be positive (it is the restart that guarantees
	// convergence).
	LambdaCite   float64
	LambdaAuthor float64
	LambdaVenue  float64
	LambdaTime   float64

	// Ensemble selects the signal combination rule, weighted by
	// WPrestige, WPopularity and WHetero (non-negative, not all 0).
	Ensemble    EnsembleKind
	WPrestige   float64
	WPopularity float64
	WHetero     float64
	// Normalization selects how signals are rescaled before the
	// ensemble: rank percentile (default, robust to the heavy-tailed
	// score distributions) or min–max.
	Normalization NormKind

	// Workers sets mat-vec parallelism; values < 1 select NumCPU.
	Workers int
	// Iter controls convergence of both iterative stages.
	Iter sparse.IterOptions

	// Shards selects the sharded solve path: the citation graph is cut
	// into this many edge-balanced contiguous row ranges (internal/shard)
	// and both iterative stages sweep shard by shard with boundary-mass
	// exchange at the barriers. Values < 2 select the single-operator
	// path. The fixed point is unchanged — sharding only trades sweep
	// count (the default sequential schedule propagates mass a whole
	// citation chain per sweep) against per-sweep exchange overhead.
	Shards int
	// ShardJacobi selects the barrier-synchronous exchange schedule for
	// sharded solves: every shard reads the previous iterate, which
	// reproduces the unsharded trajectory sweep for sweep (a debugging
	// and validation mode). The default (false) is the sequential
	// descending Gauss–Seidel schedule, which converges in fewer sweeps.
	ShardJacobi bool

	// AitkenEvery sets the cadence of Aitken Δ² extrapolation in the
	// prestige walk: every AitkenEvery plain sweeps the solver attempts
	// a vector-extrapolated jump, keeping it only when it shrinks the
	// residual (see sparse.IterOptions.AitkenEvery). 0 selects the
	// default cadence; negative disables extrapolation. The fixed point
	// is unchanged either way — extrapolation only cuts sweep count.
	AitkenEvery int
	// HeteroRelTol, when positive, gives the hetero blend phase an
	// adaptive tolerance: the stage stops once its residual has shrunk
	// by this factor relative to the first iteration (floored by
	// Iter.Tol). Warm-started solves, whose first residual is already
	// tiny, keep the absolute tolerance. 0 disables the schedule.
	HeteroRelTol float64

	// Trace, when set, receives one event per solver iteration from
	// both iterative stages (phase, iteration number, residual, wall
	// time) — the hook behind `sarank -trace`, the serving /stats
	// surface and convergence experiments. It is called synchronously
	// on the solver goroutine; keep it cheap.
	Trace func(TraceEvent)

	// InitialScores optionally seeds the iterative stages from a
	// previous solution — the warm-start path of live corpus updates,
	// where a delta grows the corpus slightly and the previous score
	// vector (extended with sparse.Resized) is already close to the
	// new fixed point. The fixed points do not depend on the starting
	// vector, so this is purely an iteration-count optimisation.
	// Vectors must have length NumArticles; either may be nil.
	InitialScores *InitialScores

	// Ablation switches used by the experiment suite.
	//
	// DisableTimeDecay forces both decay rates to zero, degrading
	// prestige to plain PageRank and popularity to citation count.
	DisableTimeDecay bool
	// DisableAuthors removes the author layer from the heterogeneous
	// walk (its weight folds into the citation layer).
	DisableAuthors bool
	// DisableVenues removes the venue layer likewise.
	DisableVenues bool
}

// DefaultOptions returns the parameterisation selected by the
// parameter studies (figures F1/F2): moderate gap decay, an
// attention horizon of ~15 months (rho 0.8/year), citation-dominant
// heterogeneous mixing, and a prestige-weighted geometric ensemble
// over rank-percentile-normalised signals.
func DefaultOptions() Options {
	return Options{
		RhoGap:     0.1,
		RhoRecency: 0.8,
		RhoFade:    0.2,
		Damping:    0.85,
		LambdaCite: 0.55, LambdaAuthor: 0.15, LambdaVenue: 0.10, LambdaTime: 0.20,
		Ensemble:      Geometric,
		WPrestige:     3,
		WPopularity:   2,
		WHetero:       1,
		Normalization: NormPercentile,
		AitkenEvery:   defaultAitkenEvery,
	}
}

// defaultAitkenEvery is the extrapolation cadence selected when
// Options.AitkenEvery is 0: frequent enough to realise most of the
// iteration savings, rare enough that a rejected trial (one wasted
// sweep) costs at most a quarter of the work.
const defaultAitkenEvery = 4

// effective returns the options with ablation switches applied.
func (o Options) effective() Options {
	if o.DisableTimeDecay {
		o.RhoGap, o.RhoRecency, o.RhoFade = 0, 0, 0
	}
	if o.DisableAuthors {
		o.LambdaCite += o.LambdaAuthor
		o.LambdaAuthor = 0
	}
	if o.DisableVenues {
		o.LambdaCite += o.LambdaVenue
		o.LambdaVenue = 0
	}
	switch {
	case o.AitkenEvery == 0:
		o.AitkenEvery = defaultAitkenEvery
	case o.AitkenEvery < 0:
		o.AitkenEvery = 0 // explicit disable
	}
	return o
}

func (o Options) validate() error {
	if o.RhoGap < 0 || o.RhoRecency < 0 || o.RhoFade < 0 ||
		math.IsNaN(o.RhoGap) || math.IsNaN(o.RhoRecency) || math.IsNaN(o.RhoFade) {
		return fmt.Errorf("%w: decay rates %v/%v/%v", ErrBadOptions, o.RhoGap, o.RhoRecency, o.RhoFade)
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		return fmt.Errorf("%w: damping %v", ErrBadOptions, o.Damping)
	}
	for _, l := range []float64{o.LambdaCite, o.LambdaAuthor, o.LambdaVenue, o.LambdaTime} {
		if l < 0 {
			return fmt.Errorf("%w: negative lambda", ErrBadOptions)
		}
	}
	s := o.LambdaCite + o.LambdaAuthor + o.LambdaVenue + o.LambdaTime
	if s < 1-1e-9 || s > 1+1e-9 {
		return fmt.Errorf("%w: lambdas sum to %v, want 1", ErrBadOptions, s)
	}
	if o.LambdaTime <= 0 {
		return fmt.Errorf("%w: LambdaTime must be positive (restart term)", ErrBadOptions)
	}
	if o.WPrestige < 0 || o.WPopularity < 0 || o.WHetero < 0 {
		return fmt.Errorf("%w: negative ensemble weight", ErrBadOptions)
	}
	if o.WPrestige+o.WPopularity+o.WHetero <= 0 {
		return fmt.Errorf("%w: all ensemble weights zero", ErrBadOptions)
	}
	switch o.Ensemble {
	case Harmonic, Arithmetic, Geometric:
	default:
		return fmt.Errorf("%w: unknown ensemble kind %d", ErrBadOptions, int(o.Ensemble))
	}
	switch o.Normalization {
	case NormPercentile, NormMinMax:
	default:
		return fmt.Errorf("%w: unknown normalization %d", ErrBadOptions, int(o.Normalization))
	}
	if o.HeteroRelTol < 0 || o.HeteroRelTol >= 1 || math.IsNaN(o.HeteroRelTol) {
		return fmt.Errorf("%w: HeteroRelTol %v, want [0, 1)", ErrBadOptions, o.HeteroRelTol)
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: Shards %d, want >= 0", ErrBadOptions, o.Shards)
	}
	return nil
}

// Solver phase names, as reported in TraceEvent.Phase.
const (
	// PhasePrestige is the gap-weighted, recency-personalised
	// PageRank stage.
	PhasePrestige = "prestige"
	// PhaseHetero is the coupled article–author–venue walk stage.
	PhaseHetero = "hetero"
	// PhaseEWPR is the ensemble weighted PageRank scorer's walk
	// (all ensemble members trace under one phase).
	PhaseEWPR = "ewpr"
	// PhaseALEF is the article-eigenfactor scorer's walk.
	PhaseALEF = "alef"
)

// TraceEvent describes one completed iteration of an iterative solver
// stage. Residuals are L1 changes; within one phase they approach the
// tolerance as the walk contracts toward its fixed point.
type TraceEvent struct {
	// Phase is PhasePrestige or PhaseHetero.
	Phase string
	// Iteration is 1-based within the phase.
	Iteration int
	// Residual is the L1 change the iteration produced.
	Residual float64
	// Elapsed is the wall time of the single iteration.
	Elapsed time.Duration
}

// iterFor returns the iteration options for one phase, binding the
// Trace hook (if any) to the phase name. A hook installed directly on
// Iter.OnIteration is preserved when Trace is unset.
func (o Options) iterFor(phase string) sparse.IterOptions {
	it := o.Iter
	if o.Trace != nil {
		trace := o.Trace
		it.OnIteration = func(ev sparse.IterEvent) {
			trace(TraceEvent{
				Phase:     phase,
				Iteration: ev.Iteration,
				Residual:  ev.Residual,
				Elapsed:   ev.Elapsed,
			})
		}
	}
	return it
}

// InitialScores carries previous-solution vectors used to warm-start
// the two iterative stages. Prestige should be the raw walk result
// (Scores.RawPrestige) — the faded vector is age-reweighted away from
// the walk's fixed point and seeds no better than the teleport — but
// any distribution near the fixed point works, closer is faster.
type InitialScores struct {
	Prestige []float64
	Hetero   []float64
}

// FromScores packages a previous ranking as a warm start, resizing
// each vector to n articles (new tail at zero). The raw prestige is
// preferred over the faded one when available. A nil scores returns
// nil, selecting a cold start.
func FromScores(prev *Scores, n int) *InitialScores {
	if prev == nil {
		return nil
	}
	init := &InitialScores{}
	switch {
	case prev.RawPrestige != nil:
		init.Prestige = sparse.Resized(prev.RawPrestige, n)
	case prev.Prestige != nil:
		init.Prestige = sparse.Resized(prev.Prestige, n)
	}
	if prev.Hetero != nil {
		init.Hetero = sparse.Resized(prev.Hetero, n)
	}
	return init
}

// Scores carries the final importance vector together with each
// component signal, so experiments can ablate without recomputation.
// All vectors are indexed by dense article id.
type Scores struct {
	// Importance is the final ensemble score in [0, 1].
	Importance []float64
	// Prestige, Popularity and Hetero are the raw component signals.
	Prestige   []float64
	Popularity []float64
	Hetero     []float64
	// RawPrestige is the prestige walk's fixed point before the
	// RhoFade age decay — the vector to warm-start a future solve
	// from (see InitialScores). With RhoFade = 0 it equals Prestige.
	RawPrestige []float64
	// PrestigeStats and HeteroStats report convergence and wall time
	// of the two iterative stages.
	PrestigeStats sparse.IterStats
	HeteroStats   sparse.IterStats
	// Shards is the effective shard count the iterative stages ran
	// with (1 for an unsharded solve, or when the scorer has no
	// iterative stage); ShardEdges holds each shard's pull-sweep edge
	// count (intra + cross) from the partition plan, nil when
	// unsharded.
	Shards     int
	ShardEdges []int64
	// Pool summarises the solver worker pool's occupancy over the
	// engine's lifetime (parallelism, kernel sweeps, chunk tasks).
	Pool sparse.PoolStats
	// Scorer is the registry name of the scorer that produced this
	// result (DefaultScorer for the full QISA-Rank pipeline). Scorers
	// other than the composite leave the component vectors they don't
	// compute nil.
	Scorer string
	// ScorerOpts is the option bag the scorer was constructed with;
	// nil when every default was used.
	ScorerOpts ScorerOptions
}

// Rank computes QISA-Rank over the network. Callers ranking the same
// network repeatedly under different options should hold an Engine
// instead, which caches the parameter-independent substrate.
func Rank(net *hetnet.Network, opts Options) (*Scores, error) {
	eng := NewEngine(net)
	defer eng.Close()
	return eng.Rank(opts)
}

// RankScorer is the one-shot form of Engine.RankScorer: rank the
// network with the named registered scorer and the given option bag.
func RankScorer(net *hetnet.Network, name string, sopts ScorerOptions, opts Options) (*Scores, error) {
	eng := NewEngine(net)
	defer eng.Close()
	return eng.RankScorer(name, sopts, opts)
}
