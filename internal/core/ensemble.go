package core

import (
	"fmt"
	"math"

	"scholarrank/internal/eval"
	"scholarrank/internal/sparse"
)

// ensembleEps keeps the harmonic and geometric means defined when a
// normalised signal is exactly zero, while preserving their
// weakest-link character.
const ensembleEps = 1e-9

// normalize rescales a signal to [0, 1] under the configured rule.
func normalize(opts Options, x []float64) []float64 {
	switch opts.Normalization {
	case NormMinMax:
		out := sparse.Clone(x)
		sparse.MinMaxScale(out)
		return out
	default: // NormPercentile
		return eval.Percentiles(x)
	}
}

// combine normalises each component signal and folds them into the
// importance vector according to the configured ensemble. The inputs
// are not modified.
//
// The default normalisation is the rank percentile rather than
// min–max: citation-derived signals are extremely heavy tailed, and
// min–max lets a single outlier compress every other article into a
// sliver near zero, destroying the ensemble's resolution. Percentile
// normalisation is a Borda-style rank fusion that keeps full ordering
// information from every signal.
func combine(opts Options, prestige, popularity, hetero []float64) ([]float64, error) {
	n := len(prestige)
	p := normalize(opts, prestige)
	q := normalize(opts, popularity)
	h := normalize(opts, hetero)

	wSum := opts.WPrestige + opts.WPopularity + opts.WHetero
	wp := opts.WPrestige / wSum
	wq := opts.WPopularity / wSum
	wh := opts.WHetero / wSum

	out := make([]float64, n)
	switch opts.Ensemble {
	case Arithmetic:
		for i := range out {
			out[i] = wp*p[i] + wq*q[i] + wh*h[i]
		}
	case Geometric:
		for i := range out {
			out[i] = math.Exp(wp*math.Log(p[i]+ensembleEps)+
				wq*math.Log(q[i]+ensembleEps)+
				wh*math.Log(h[i]+ensembleEps)) - ensembleEps
			if out[i] < 0 {
				out[i] = 0
			}
		}
	case Harmonic:
		for i := range out {
			denom := wp/(p[i]+ensembleEps) + wq/(q[i]+ensembleEps) + wh/(h[i]+ensembleEps)
			out[i] = 1/denom - ensembleEps
			if out[i] < 0 {
				out[i] = 0
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown ensemble kind %d", ErrBadOptions, int(opts.Ensemble))
	}
	return out, nil
}
