package core

import (
	"fmt"
	"testing"

	"scholarrank/internal/gen"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// shardEquivNetwork generates one synthetic corpus for the sharded
// equivalence properties. prefAttach 0 yields uniformly random
// citations; 1 yields the power-law in-degree tail sharding is
// designed around.
func shardEquivNetwork(t *testing.T, n int, prefAttach float64, seed int64) *hetnet.Network {
	t.Helper()
	cfg := gen.NewDefaultConfig(n)
	cfg.PrefAttach = prefAttach
	cfg.Seed = seed
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return hetnet.Build(c.Store)
}

// shardEquivOptions is scorerTestOptions with min–max normalisation:
// articles with exactly equal component scores (same-year uncited
// articles under the recency teleport) form percentile tie groups
// that 1e-15 float-association noise between the sharded and
// unsharded trajectories would split differently, so the rank-based
// importance is not comparable at 1e-10 — the smooth normalisation
// is.
func shardEquivOptions() Options {
	opts := scorerTestOptions()
	opts.Normalization = NormMinMax
	return opts
}

// TestShardedRankMatchesUnsharded is the sharded-solve equivalence
// property: the default scorer over 2/4/8 shards, under both exchange
// schedules, on random and power-law corpora, must match the
// unsharded solve to 1e-10 — cold, warm, and warm across a
// shard-count change.
func TestShardedRankMatchesUnsharded(t *testing.T) {
	const tol = 1e-10
	check := func(t *testing.T, label string, got, want *Scores) {
		t.Helper()
		for name, pair := range map[string][2][]float64{
			"Importance":  {got.Importance, want.Importance},
			"Prestige":    {got.Prestige, want.Prestige},
			"RawPrestige": {got.RawPrestige, want.RawPrestige},
			"Popularity":  {got.Popularity, want.Popularity},
			"Hetero":      {got.Hetero, want.Hetero},
		} {
			if d := sparse.MaxDiff(pair[0], pair[1]); d > tol {
				t.Errorf("%s: %s deviates from the unsharded solve by %v", label, name, d)
			}
		}
	}
	for _, tc := range []struct {
		name       string
		prefAttach float64
	}{
		{"random", 0},
		{"powerlaw", 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := shardEquivNetwork(t, 600, tc.prefAttach, 7)
			want, err := Rank(net, shardEquivOptions())
			if err != nil {
				t.Fatal(err)
			}
			if want.Shards != 1 || want.ShardEdges != nil {
				t.Fatalf("unsharded solve reports shard layout %d/%v", want.Shards, want.ShardEdges)
			}
			if want.PrestigeStats.Exchanges != 0 || want.HeteroStats.Exchanges != 0 {
				t.Fatalf("unsharded solve reports boundary exchanges %d/%d",
					want.PrestigeStats.Exchanges, want.HeteroStats.Exchanges)
			}
			for _, shards := range []int{2, 4, 8} {
				for _, jacobi := range []bool{false, true} {
					label := fmt.Sprintf("shards=%d jacobi=%v", shards, jacobi)
					opts := shardEquivOptions()
					opts.Shards = shards
					opts.ShardJacobi = jacobi
					eng := NewEngine(net)
					cold, err := eng.Rank(opts)
					if err != nil {
						eng.Close()
						t.Fatalf("%s: cold: %v", label, err)
					}
					check(t, label+" cold", cold, want)
					if cold.Shards != shards {
						t.Errorf("%s: result reports %d shards", label, cold.Shards)
					}
					if len(cold.ShardEdges) != shards {
						t.Errorf("%s: %d shard edge counts, want %d", label, len(cold.ShardEdges), shards)
					}
					if cold.PrestigeStats.Exchanges <= 0 || cold.HeteroStats.Exchanges <= 0 {
						t.Errorf("%s: sharded solve reports no boundary exchanges (%d/%d)",
							label, cold.PrestigeStats.Exchanges, cold.HeteroStats.Exchanges)
					}
					warm, err := eng.Rank(opts)
					if err != nil {
						eng.Close()
						t.Fatalf("%s: warm: %v", label, err)
					}
					check(t, label+" warm", warm, want)
					coldIters := cold.PrestigeStats.Iterations + cold.HeteroStats.Iterations
					warmIters := warm.PrestigeStats.Iterations + warm.HeteroStats.Iterations
					if warmIters > coldIters {
						t.Errorf("%s: warm repeat took %d iterations, cold took %d", label, warmIters, coldIters)
					}
					// The warm cache must survive a shard-count change:
					// fixed points are shard-independent, so the cached
					// vectors stay valid starting points.
					opts.Shards = shards * 2
					if shards == 8 {
						opts.Shards = 2
					}
					crossed, err := eng.Rank(opts)
					eng.Close()
					if err != nil {
						t.Fatalf("%s: warm across shard-count change: %v", label, err)
					}
					check(t, label+" resharded", crossed, want)
					if crossed.Shards != opts.Shards {
						t.Errorf("%s: resharded result reports %d shards, want %d", label, crossed.Shards, opts.Shards)
					}
				}
			}
		})
	}
}
