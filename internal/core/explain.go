package core

import (
	"errors"
	"fmt"

	"scholarrank/internal/eval"
)

// ErrBadExplain reports invalid explanation arguments.
var ErrBadExplain = errors.New("core: invalid explain request")

// SignalDelta is one component's contribution to an importance
// difference, in rank-percentile terms.
type SignalDelta struct {
	Signal string  // "prestige", "popularity" or "hetero"
	A, B   float64 // the two articles' percentiles on this signal
	Delta  float64 // A - B
}

// Explanation decomposes why article A outranks (or trails) article B.
type Explanation struct {
	A, B     int // dense article ids
	Winner   int // id of the higher-importance article
	Signals  []SignalDelta
	Dominant string // the signal with the largest absolute percentile gap
}

// Explainer answers "why is X above Y" queries over one Scores
// result. It precomputes the per-signal percentile vectors once, so
// each query is O(1) — the form a ranking service wants.
type Explainer struct {
	importance []float64
	signals    []string
	pct        [][]float64
}

// NewExplainer precomputes percentile vectors for the scores. Only
// the component signals the producing scorer actually computed are
// explained: a single-stage or external-baseline scorer leaves its
// unused components nil, and Explain then reports just the signals
// that exist (possibly none).
func NewExplainer(sc *Scores) *Explainer {
	e := &Explainer{importance: sc.Importance}
	for _, sig := range []struct {
		name string
		vec  []float64
	}{
		{"prestige", sc.Prestige},
		{"popularity", sc.Popularity},
		{"hetero", sc.Hetero},
	} {
		if sig.vec == nil {
			continue
		}
		e.signals = append(e.signals, sig.name)
		e.pct = append(e.pct, eval.Percentiles(sig.vec))
	}
	return e
}

// Explain decomposes the importance difference between two articles
// into per-signal percentile gaps.
func (e *Explainer) Explain(a, b int) (*Explanation, error) {
	n := len(e.importance)
	if a < 0 || a >= n || b < 0 || b >= n {
		return nil, fmt.Errorf("%w: ids %d,%d of %d", ErrBadExplain, a, b, n)
	}
	if a == b {
		return nil, fmt.Errorf("%w: identical articles", ErrBadExplain)
	}
	ex := &Explanation{A: a, B: b, Winner: a}
	if e.importance[b] > e.importance[a] {
		ex.Winner = b
	}
	for i, name := range e.signals {
		pct := e.pct[i]
		ex.Signals = append(ex.Signals, SignalDelta{
			Signal: name, A: pct[a], B: pct[b], Delta: pct[a] - pct[b],
		})
	}
	var maxAbs float64
	for _, s := range ex.Signals {
		abs := s.Delta
		if abs < 0 {
			abs = -abs
		}
		if abs >= maxAbs {
			maxAbs = abs
			ex.Dominant = s.Signal
		}
	}
	return ex, nil
}

// Explain is the convenience one-shot form of Explainer.Explain; hold
// an Explainer for repeated queries.
func (sc *Scores) Explain(a, b int) (*Explanation, error) {
	return NewExplainer(sc).Explain(a, b)
}
