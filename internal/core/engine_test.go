package core

import (
	"runtime"
	"testing"
	"time"

	"scholarrank/internal/corpus"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

func TestEngineMatchesRank(t *testing.T) {
	net := fixture(t)
	direct, err := Rank(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(net)
	viaEngine, err := eng.Rank(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxDiff(direct.Importance, viaEngine.Importance); d > 1e-12 {
		t.Errorf("engine deviates from Rank by %v", d)
	}
	if eng.Network() != net {
		t.Error("Network() identity lost")
	}
}

func TestEngineCachesGapTransitions(t *testing.T) {
	eng := NewEngine(fixture(t))
	opts := DefaultOptions()
	if _, err := eng.Rank(opts); err != nil {
		t.Fatal(err)
	}
	if len(eng.gapTrans) != 1 {
		t.Fatalf("gap cache size = %d", len(eng.gapTrans))
	}
	first := eng.gapTrans[opts.RhoGap]
	// Same RhoGap: cache hit.
	if _, err := eng.Rank(opts); err != nil {
		t.Fatal(err)
	}
	if eng.gapTrans[opts.RhoGap] != first {
		t.Error("cache rebuilt on identical RhoGap")
	}
	// Different RhoGap: new entry.
	opts.RhoGap = 0.5
	if _, err := eng.Rank(opts); err != nil {
		t.Fatal(err)
	}
	if len(eng.gapTrans) != 2 {
		t.Errorf("gap cache size = %d after second rho", len(eng.gapTrans))
	}
}

func TestEngineZeroGapSharesCitationTransition(t *testing.T) {
	eng := NewEngine(fixture(t))
	opts := DefaultOptions()
	opts.RhoGap = 0
	if _, err := eng.Rank(opts); err != nil {
		t.Fatal(err)
	}
	if eng.gapTrans[0] != eng.citTrans {
		t.Error("rho=0 should reuse the citation transition")
	}
}

func TestEngineSweepConsistency(t *testing.T) {
	// Sweeping options through one engine must give the same results
	// as fresh Rank calls — the cache must be purely an optimisation.
	net := fixture(t)
	eng := NewEngine(net)
	for _, rho := range []float64{0, 0.2, 0.8} {
		opts := DefaultOptions()
		opts.RhoRecency = rho
		fresh, err := Rank(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := eng.Rank(opts)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.MaxDiff(fresh.Importance, cached.Importance); d > 1e-12 {
			t.Errorf("rho=%v: engine deviates by %v", rho, d)
		}
	}
}

func TestEngineWarmStartReducesIterations(t *testing.T) {
	net := fixture(t)
	eng := NewEngine(net)
	opts := DefaultOptions()
	// Pin extrapolation off: on a 7-article fixture an accepted Aitken
	// jump can land a cold solve on the fixed point in fewer sweeps
	// than any seed saves, which would invert the warm-vs-cold count
	// this test isolates (warm-start correctness under the accelerated
	// default is covered by TestWarmStartMatchesCold).
	opts.AitkenEvery = -1
	first, err := eng.Rank(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny parameter nudge: the warm-started second solve must both
	// match a cold solve and converge in fewer iterations.
	opts.RhoRecency = 0.75
	warm, err := eng.Rank(opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Rank(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxDiff(warm.Importance, cold.Importance); d > 1e-7 {
		t.Errorf("warm start changed the fixed point by %v", d)
	}
	if warm.PrestigeStats.Iterations >= cold.PrestigeStats.Iterations {
		t.Errorf("warm start did not save prestige iterations: %d vs %d",
			warm.PrestigeStats.Iterations, cold.PrestigeStats.Iterations)
	}
	_ = first
}

func TestEngineValidatesOptions(t *testing.T) {
	eng := NewEngine(fixture(t))
	opts := DefaultOptions()
	opts.Damping = 7
	if _, err := eng.Rank(opts); err == nil {
		t.Error("bad options accepted")
	}
}

func TestEngineEmptyNetwork(t *testing.T) {
	eng := NewEngine(hetnet.Build(corpus.NewBuilder().Freeze()))
	sc, err := eng.Rank(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Importance) != 0 {
		t.Errorf("empty engine scores: %+v", sc)
	}
}

// TestEngineWorkersRaceAndLeak exercises Rank across worker counts —
// under -race this doubles as the data-race check on the pooled
// kernels — then asserts Close releases every pool goroutine. Pool
// resizes inside the loop also cover the close-and-respawn path.
func TestEngineWorkersRaceAndLeak(t *testing.T) {
	net := fixture(t)
	before := runtime.NumGoroutine()
	eng := NewEngine(net)
	var base *Scores
	for _, workers := range []int{1, 2, 4, 2} {
		opts := DefaultOptions()
		opts.Workers = workers
		sc, err := eng.Rank(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = sc
		} else if d := sparse.MaxDiff(base.Importance, sc.Importance); d > 1e-12 {
			t.Errorf("workers=%d deviates from workers=1 by %v", workers, d)
		}
	}
	eng.Close()
	eng.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("pool goroutines leaked: before=%d after=%d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A closed engine still ranks (serial fallback pools are re-created
	// on demand).
	if _, err := eng.Rank(DefaultOptions()); err != nil {
		t.Fatalf("rank after Close: %v", err)
	}
	eng.Close()
}
