package core

import (
	"math"
	"testing"
)

// combineOpts returns options with the given ensemble and equal
// weights, percentile normalisation.
func combineOpts(kind EnsembleKind, norm NormKind) Options {
	o := DefaultOptions()
	o.Ensemble = kind
	o.Normalization = norm
	o.WPrestige, o.WPopularity, o.WHetero = 1, 1, 1
	return o
}

func TestCombineArithmeticGolden(t *testing.T) {
	// Three items; percentile-normalised signals are hand-computable:
	// p = (1, 0.5, 0), q = (0, 0.5, 1), h = (1, 0.5, 0).
	p := []float64{30, 20, 10}
	q := []float64{1, 2, 3}
	h := []float64{300, 200, 100}
	out, err := combine(combineOpts(Arithmetic, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.0 / 3, 0.5, 1.0 / 3}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestCombineHarmonicZeroDominance(t *testing.T) {
	// Harmonic: an item at percentile 0 on any signal scores ≈ 0 no
	// matter how strong the others are.
	p := []float64{30, 20, 10}
	q := []float64{1, 2, 3}
	h := []float64{300, 200, 100}
	out, err := combine(combineOpts(Harmonic, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] > 1e-6 {
		t.Errorf("item with a zero signal scored %v under harmonic", out[0])
	}
}

func TestCombineGeometricBetweenBounds(t *testing.T) {
	p := []float64{3, 2, 1, 5}
	q := []float64{1, 4, 2, 5}
	h := []float64{2, 2, 9, 1}
	hOut, err := combine(combineOpts(Harmonic, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	gOut, err := combine(combineOpts(Geometric, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	aOut, err := combine(combineOpts(Arithmetic, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if hOut[i] > gOut[i]+1e-6 || gOut[i] > aOut[i]+1e-6 {
			t.Errorf("mean inequality violated at %d: H=%v G=%v A=%v", i, hOut[i], gOut[i], aOut[i])
		}
	}
}

func TestCombineMinMaxNormalization(t *testing.T) {
	// Min-max keeps the raw magnitudes: a single huge outlier pins
	// everything else near zero, which is exactly why percentile is
	// the default.
	p := []float64{1000, 2, 1}
	q := []float64{1000, 2, 1}
	h := []float64{1000, 2, 1}
	out, err := combine(combineOpts(Arithmetic, NormMinMax), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Errorf("outlier score = %v, want 1", out[0])
	}
	if out[1] > 0.01 {
		t.Errorf("non-outlier score = %v, want ≈0 under min-max", out[1])
	}
	// Under percentile normalisation the same data spreads evenly.
	pOut, err := combine(combineOpts(Arithmetic, NormPercentile), p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	if pOut[1] != 0.5 {
		t.Errorf("percentile middle score = %v, want 0.5", pOut[1])
	}
}

func TestCombineWeightsNormalised(t *testing.T) {
	// Scaling all weights by a constant must not change the result.
	p := []float64{3, 1, 2}
	q := []float64{1, 2, 3}
	h := []float64{2, 3, 1}
	a := combineOpts(Arithmetic, NormPercentile)
	a.WPrestige, a.WPopularity, a.WHetero = 1, 2, 3
	b := a
	b.WPrestige, b.WPopularity, b.WHetero = 10, 20, 30
	outA, err := combine(a, p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := combine(b, p, q, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if math.Abs(outA[i]-outB[i]) > 1e-12 {
			t.Errorf("weight scaling changed result at %d: %v vs %v", i, outA[i], outB[i])
		}
	}
}

func TestCombineUnknownEnsemble(t *testing.T) {
	o := combineOpts(EnsembleKind(42), NormPercentile)
	if _, err := combine(o, []float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Error("unknown ensemble accepted by combine")
	}
}
