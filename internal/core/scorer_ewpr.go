package core

import (
	"fmt"
	"math"

	"scholarrank/internal/corpus"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
	"scholarrank/internal/temporal"
)

func init() {
	RegisterScorer(ScorerEWPR,
		"ensemble weighted PageRank: venue/author-weighted citation walks, percentile-averaged (WSDM Cup 2016 winner)",
		newEWPRScorer)
}

// ScorerEWPR is the registry name of the ensemble weighted PageRank
// baseline.
const ScorerEWPR = "ewpr"

// ewprScorer implements the Ensemble Enabled Weighted PageRank family
// (WSDM Cup 2016 winner): citation edges are weighted by the *citing*
// article's venue prestige and author talent — an endorsement from a
// strong venue's well-published authors outweighs one from an obscure
// corner of the graph — and the final score is an ensemble of several
// damped walks that differ in edge weighting and teleport. Entity
// weights are estimated endogenously as add-one-smoothed mean
// citations per venue/author (normalised to mean 1), so no external
// venue ranking is needed. Each ensemble member's fixed point is a
// probability distribution on the same scale, so the members are
// fused by plain averaging — a roundoff-stable combination (rank
// fusion would let near-tied scores flip across solve orders).
type ewprScorer struct {
	damping     float64
	venueGamma  float64
	authorGamma float64
}

func newEWPRScorer(o ScorerOptions) (Scorer, error) {
	if err := o.checkKeys(ScorerEWPR, "damping", "venue_gamma", "author_gamma"); err != nil {
		return nil, err
	}
	s := &ewprScorer{
		damping:     o.Get("damping", 0.85),
		venueGamma:  o.Get("venue_gamma", 0.5),
		authorGamma: o.Get("author_gamma", 0.5),
	}
	if s.damping <= 0 || s.damping >= 1 || math.IsNaN(s.damping) {
		return nil, fmt.Errorf("%w: ewpr damping %v, want (0, 1)", ErrBadOptions, s.damping)
	}
	if s.venueGamma < 0 || s.authorGamma < 0 ||
		math.IsNaN(s.venueGamma) || math.IsNaN(s.authorGamma) {
		return nil, fmt.Errorf("%w: ewpr gammas %v/%v, want >= 0", ErrBadOptions, s.venueGamma, s.authorGamma)
	}
	return s, nil
}

func (s *ewprScorer) Name() string { return ScorerEWPR }

func (s *ewprScorer) Score(ctx *SolveContext) ([]float64, error) {
	opts := ctx.Options()
	view := ctx.View()
	n := view.NumArticles()

	weights := s.articleWeights(ctx) // solver order, mean ~1
	cit := ctx.CitationTransition()
	weighted := cit.Reweighted(func(u, v int32) float64 { return weights[u] })

	recency, err := temporal.NewExponential(opts.RhoRecency)
	if err != nil {
		return nil, fmt.Errorf("core: ewpr: %w", err)
	}
	recencyTeleport := rank.RecencyVector(view.Years, view.Now, recency)
	sparse.Normalize1(recencyTeleport)
	uniform := make([]float64, n)
	sparse.Uniform(uniform)

	// The ensemble: the weighted walk under both teleports plus the
	// unweighted walk as an anchor, so the endogenous weight estimate
	// can refine the plain ranking but never fully override it.
	members := []struct {
		key      string
		t        *sparse.Transition
		teleport []float64
	}{
		{"weighted-uniform", weighted, uniform},
		{"weighted-recency", weighted, recencyTeleport},
		{"plain-uniform", cit, uniform},
	}

	var agg sparse.IterStats
	agg.Converged = true
	fused := make([]float64, n)
	for _, m := range members {
		init, err := ctx.WarmStart(m.key, nil)
		if err != nil {
			return nil, fmt.Errorf("core: ewpr %s: %w", m.key, err)
		}
		if init == nil {
			init = m.teleport
		}
		it := ctx.IterFor(PhaseEWPR)
		it.AitkenEvery = opts.AitkenEvery
		vec, stats, err := sparse.DampedWalkFrom(m.t, s.damping, m.teleport, init, it)
		if err != nil {
			return nil, fmt.Errorf("core: ewpr %s: %w", m.key, err)
		}
		ctx.KeepWarm(m.key, vec)
		agg.Iterations += stats.Iterations
		agg.Elapsed += stats.Elapsed
		agg.Extrapolations += stats.Extrapolations
		agg.IterationsSaved += stats.IterationsSaved
		agg.Converged = agg.Converged && stats.Converged
		agg.Residual = math.Max(agg.Residual, stats.Residual)
		for i, v := range ctx.Restore(vec) {
			fused[i] += v
		}
	}
	inv := 1 / float64(len(members))
	for i := range fused {
		fused[i] *= inv
	}
	ctx.SetComponents(&Scores{PrestigeStats: agg})
	return fused, nil
}

// articleWeights estimates each article's citation-source quality
// venueW^γv · authorW^γa in original order, then maps it to solver
// order for per-edge lookup by citing article id. Venueless or
// authorless articles carry the neutral weight 1 on that factor.
func (s *ewprScorer) articleWeights(ctx *SolveContext) []float64 {
	net := ctx.Network()
	n := net.NumArticles()
	indeg := net.Citations.InDegrees()

	venueW := entityMeanCitations(indeg, net.NumVenues(), func(e int32) []corpus.ArticleID {
		return net.VenueArticles(e)
	})
	authorW := entityMeanCitations(indeg, net.NumAuthors(), func(e int32) []corpus.ArticleID {
		return net.AuthorArticles(e)
	})

	w := make([]float64, n)
	for i := range w {
		vw := 1.0
		if ven := net.ArticleVenue(corpus.ArticleID(i)); ven != corpus.NoVenue {
			vw = venueW[ven]
		}
		aw := 1.0
		if authors := net.ArticleAuthors(corpus.ArticleID(i)); len(authors) > 0 {
			var sum float64
			for _, a := range authors {
				sum += authorW[a]
			}
			aw = sum / float64(len(authors))
		}
		w[i] = math.Pow(vw, s.venueGamma) * math.Pow(aw, s.authorGamma)
	}
	return ctx.Perm().Applied(w)
}

// entityMeanCitations computes add-one-smoothed mean citations per
// article for each entity, normalised so the across-entity mean is 1
// — the same endogenous prestige estimate rank.VenueWeightedPageRank
// uses, generalised over the entity axis.
func entityMeanCitations(indeg []int, num int, articlesOf func(int32) []corpus.ArticleID) []float64 {
	w := make([]float64, num)
	if num == 0 {
		return w
	}
	var total float64
	for e := 0; e < num; e++ {
		arts := articlesOf(int32(e))
		var cites float64
		for _, p := range arts {
			cites += float64(indeg[p])
		}
		w[e] = (cites + 1) / float64(len(arts)+1)
		total += w[e]
	}
	if total > 0 {
		mean := total / float64(num)
		for e := range w {
			w[e] /= mean
		}
	}
	return w
}
