package core

import "fmt"

// The paper's pipeline, re-expressed as registered scorers: the three
// component signals stand alone (prestige / popularity / hetero) and
// the full ensemble is the composite registered as DefaultScorer.

func init() {
	RegisterScorer(DefaultScorer,
		"QISA-Rank: gap-decayed prestige + decayed popularity + hetero walk, ensemble-folded",
		func(o ScorerOptions) (Scorer, error) {
			if err := o.checkKeys(DefaultScorer); err != nil {
				return nil, err
			}
			return qisaScorer{}, nil
		})
	RegisterScorer(ScorerPrestige,
		"gap-decayed, recency-personalised PageRank with prestige fading (the paper's first stage, alone)",
		func(o ScorerOptions) (Scorer, error) {
			if err := o.checkKeys(ScorerPrestige); err != nil {
				return nil, err
			}
			return prestigeScorer{}, nil
		})
	RegisterScorer(ScorerPopularity,
		"time-decayed citation intensity (closed form, no walk)",
		func(o ScorerOptions) (Scorer, error) {
			if err := o.checkKeys(ScorerPopularity); err != nil {
				return nil, err
			}
			return popularityScorer{}, nil
		})
	RegisterScorer(ScorerHetero,
		"coupled article-author-venue walk with recency restart (the cold-start signal, alone)",
		func(o ScorerOptions) (Scorer, error) {
			if err := o.checkKeys(ScorerHetero); err != nil {
				return nil, err
			}
			return heteroScorer{}, nil
		})
}

// Registry names of the single-signal pipeline scorers. They reuse
// the solver phase names, so traces read the same either way.
const (
	ScorerPrestige   = PhasePrestige
	ScorerPopularity = "popularity"
	ScorerHetero     = PhaseHetero
)

// Warm-cache stage keys. Prestige fixed points depend on RhoGap (the
// operator changes with it), so each distinct decay keeps its own
// vector — mirroring the engine's gap-transition cache.
func prestigeWarmKey(rhoGap float64) string { return fmt.Sprintf("prestige/%g", rhoGap) }

const heteroWarmKey = "hetero"

// qisaScorer is the full two-stage pipeline: both iterative stages in
// solver space, fade + popularity in original order, folded by the
// configured ensemble.
type qisaScorer struct{}

func (qisaScorer) Name() string { return DefaultScorer }

func (qisaScorer) Score(ctx *SolveContext) ([]float64, error) {
	opts := ctx.Options()
	gapTrans, err := ctx.GapTransition(opts.RhoGap)
	if err != nil {
		return nil, err
	}
	shardedGap, err := ctx.Sharded(gapTrans)
	if err != nil {
		return nil, err
	}
	initPrestige, err := ctx.WarmStart(prestigeWarmKey(opts.RhoGap), opts.InitialScores.prestige())
	if err != nil {
		return nil, fmt.Errorf("core: prestige warm start: %w", err)
	}
	initHetero, err := ctx.WarmStart(heteroWarmKey, opts.InitialScores.hetero())
	if err != nil {
		return nil, fmt.Errorf("core: hetero warm start: %w", err)
	}
	rawSolver, pStats, err := computePrestige(ctx.View(), opts, gapTrans, shardedGap, initPrestige)
	if err != nil {
		return nil, err
	}
	ctx.KeepWarm(prestigeWarmKey(opts.RhoGap), rawSolver)
	rawPrestige := ctx.Restore(rawSolver)
	prestige, err := applyFade(ctx.Network(), opts, rawPrestige)
	if err != nil {
		return nil, err
	}
	popularity := computePopularity(ctx.Network(), opts)
	citTrans := ctx.CitationTransition()
	shardedCit, err := ctx.Sharded(citTrans)
	if err != nil {
		return nil, err
	}
	heteroSolver, hStats, err := computeHetero(ctx.View(), opts, citTrans, shardedCit, ctx.Pool(), initHetero)
	if err != nil {
		return nil, err
	}
	ctx.KeepWarm(heteroWarmKey, heteroSolver)
	hetero := ctx.Restore(heteroSolver)
	importance, err := combine(opts, prestige, popularity, hetero)
	if err != nil {
		return nil, err
	}
	sc := &Scores{
		Prestige:      prestige,
		Popularity:    popularity,
		Hetero:        hetero,
		RawPrestige:   rawPrestige,
		PrestigeStats: pStats,
		HeteroStats:   hStats,
	}
	if err := stampShards(ctx, sc); err != nil {
		return nil, err
	}
	ctx.SetComponents(sc)
	return importance, nil
}

// stampShards records the effective shard layout on a result whose
// scorer ran iterative stages: the plan's shard count and per-shard
// edge totals, or the single-operator defaults when unsharded.
func stampShards(ctx *SolveContext, sc *Scores) error {
	plan, err := ctx.ShardPlan()
	if err != nil {
		return err
	}
	if plan == nil {
		sc.Shards = 1
		return nil
	}
	sc.Shards = plan.Shards()
	sc.ShardEdges = plan.EdgeCounts()
	return nil
}

// prestigeScorer runs the first stage alone. Importance is the faded
// prestige signal itself (raw scale — rank-based comparisons don't
// care, and the raw vector is what warm starts want).
type prestigeScorer struct{}

func (prestigeScorer) Name() string { return ScorerPrestige }

func (prestigeScorer) Score(ctx *SolveContext) ([]float64, error) {
	opts := ctx.Options()
	gapTrans, err := ctx.GapTransition(opts.RhoGap)
	if err != nil {
		return nil, err
	}
	sharded, err := ctx.Sharded(gapTrans)
	if err != nil {
		return nil, err
	}
	init, err := ctx.WarmStart(prestigeWarmKey(opts.RhoGap), opts.InitialScores.prestige())
	if err != nil {
		return nil, fmt.Errorf("core: prestige warm start: %w", err)
	}
	rawSolver, stats, err := computePrestige(ctx.View(), opts, gapTrans, sharded, init)
	if err != nil {
		return nil, err
	}
	ctx.KeepWarm(prestigeWarmKey(opts.RhoGap), rawSolver)
	rawPrestige := ctx.Restore(rawSolver)
	prestige, err := applyFade(ctx.Network(), opts, rawPrestige)
	if err != nil {
		return nil, err
	}
	sc := &Scores{
		Prestige:      prestige,
		RawPrestige:   rawPrestige,
		PrestigeStats: stats,
	}
	if err := stampShards(ctx, sc); err != nil {
		return nil, err
	}
	ctx.SetComponents(sc)
	return prestige, nil
}

// popularityScorer is the closed-form decayed citation count — no
// iteration, so no warm cache and no solver stats.
type popularityScorer struct{}

func (popularityScorer) Name() string { return ScorerPopularity }

func (popularityScorer) Score(ctx *SolveContext) ([]float64, error) {
	popularity := computePopularity(ctx.Network(), ctx.Options())
	ctx.SetComponents(&Scores{Popularity: popularity})
	return popularity, nil
}

// heteroScorer runs the coupled walk alone — the pure cold-start
// signal.
type heteroScorer struct{}

func (heteroScorer) Name() string { return ScorerHetero }

func (heteroScorer) Score(ctx *SolveContext) ([]float64, error) {
	opts := ctx.Options()
	init, err := ctx.WarmStart(heteroWarmKey, opts.InitialScores.hetero())
	if err != nil {
		return nil, fmt.Errorf("core: hetero warm start: %w", err)
	}
	citTrans := ctx.CitationTransition()
	sharded, err := ctx.Sharded(citTrans)
	if err != nil {
		return nil, err
	}
	heteroSolver, stats, err := computeHetero(ctx.View(), opts, citTrans, sharded, ctx.Pool(), init)
	if err != nil {
		return nil, err
	}
	ctx.KeepWarm(heteroWarmKey, heteroSolver)
	hetero := ctx.Restore(heteroSolver)
	sc := &Scores{Hetero: hetero, HeteroStats: stats}
	if err := stampShards(ctx, sc); err != nil {
		return nil, err
	}
	ctx.SetComponents(sc)
	return hetero, nil
}
