package core

import (
	"errors"
	"fmt"
	"sort"

	"scholarrank/internal/corpus"
	"scholarrank/internal/eval"
	"scholarrank/internal/gen"
	"scholarrank/internal/hetnet"
)

// ErrBadHistory reports invalid rank-history parameters.
var ErrBadHistory = errors.New("core: invalid history request")

// Snapshot is the ranking state of one article at one cutoff year.
type Snapshot struct {
	// Cutoff is the last visible publication year of this snapshot.
	Cutoff int
	// Citations the article had accumulated by the cutoff.
	Citations int
	// Importance and Percentile of the article at the cutoff
	// (percentile 1 = top of the visible corpus).
	Importance float64
	Percentile float64
}

// History is one article's rank trajectory across corpus snapshots.
type History struct {
	Key       string
	Snapshots []Snapshot
}

// RankHistory replays the corpus at each cutoff year and records the
// ranking trajectory of the requested articles — the library form of
// "when would this method have surfaced that paper?". Cutoffs are
// deduplicated and processed in ascending order; articles not yet
// published at a cutoff simply have no snapshot there.
func RankHistory(s *corpus.Store, keys []string, cutoffs []int, opts Options) ([]History, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("%w: no article keys", ErrBadHistory)
	}
	if len(cutoffs) == 0 {
		return nil, fmt.Errorf("%w: no cutoff years", ErrBadHistory)
	}
	for _, key := range keys {
		if _, ok := s.ArticleByKey(key); !ok {
			return nil, fmt.Errorf("%w: unknown article %q", ErrBadHistory, key)
		}
	}
	years := append([]int(nil), cutoffs...)
	sort.Ints(years)
	years = dedupInts(years)

	out := make([]History, len(keys))
	for i, key := range keys {
		out[i].Key = key
	}
	for _, cutoff := range years {
		hold, err := gen.SplitByYear(s, cutoff)
		if err != nil {
			if errors.Is(err, gen.ErrEmptySplit) {
				continue // nothing published yet
			}
			return nil, err
		}
		net := hetnet.Build(hold.Train)
		scores, err := Rank(net, opts)
		if err != nil {
			return nil, err
		}
		pct := eval.Percentiles(scores.Importance)
		in := net.Citations.InDegrees()
		for i, key := range keys {
			id, ok := hold.Train.ArticleByKey(key)
			if !ok {
				continue // not yet published at this cutoff
			}
			out[i].Snapshots = append(out[i].Snapshots, Snapshot{
				Cutoff:     cutoff,
				Citations:  in[id],
				Importance: scores.Importance[id],
				Percentile: pct[id],
			})
		}
	}
	return out, nil
}

func dedupInts(sorted []int) []int {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
