package core

import (
	"testing"

	"scholarrank/internal/sparse"
)

// Per-scorer forms of the solver-space property tests: every
// registered scorer must be reorder-invariant (solving over the
// permuted operator and unmapping at the boundary matches the
// identity-order solve) and must accept its own warm cache (a repeat
// solve on the same engine converges to the same scores, in no more
// iterations).

func scorerTestOptions() Options {
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Iter = sparse.IterOptions{Tol: 1e-13, MaxIter: 2000}
	return opts
}

func TestScorerReorderInvariant(t *testing.T) {
	_, permNet, baseNet := genPermutedNetwork(t, 400, 2)
	engPerm := NewEngine(permNet)
	defer engPerm.Close()
	engBase := NewEngine(baseNet)
	defer engBase.Close()
	for _, name := range ScorerNames() {
		got, err := engPerm.RankScorer(name, nil, scorerTestOptions())
		if err != nil {
			t.Fatalf("%s: permuted solve: %v", name, err)
		}
		want, err := engBase.RankScorer(name, nil, scorerTestOptions())
		if err != nil {
			t.Fatalf("%s: identity solve: %v", name, err)
		}
		if d := sparse.MaxDiff(got.Importance, want.Importance); d > 1e-12 {
			t.Errorf("%s: importance deviates from identity-order solve by %v", name, d)
		}
	}
}

func TestScorerWarmCacheMatchesCold(t *testing.T) {
	_, permNet, _ := genPermutedNetwork(t, 400, 3)
	for _, name := range ScorerNames() {
		eng := NewEngine(permNet)
		cold, err := eng.RankScorer(name, nil, scorerTestOptions())
		if err != nil {
			eng.Close()
			t.Fatalf("%s: cold solve: %v", name, err)
		}
		warm, err := eng.RankScorer(name, nil, scorerTestOptions())
		eng.Close()
		if err != nil {
			t.Fatalf("%s: warm solve: %v", name, err)
		}
		if d := sparse.MaxDiff(warm.Importance, cold.Importance); d > 1e-8 {
			t.Errorf("%s: warm repeat deviates from cold solve by %v", name, d)
		}
		coldIters := cold.PrestigeStats.Iterations + cold.HeteroStats.Iterations
		warmIters := warm.PrestigeStats.Iterations + warm.HeteroStats.Iterations
		if warmIters > coldIters {
			t.Errorf("%s: warm repeat took %d iterations, cold took %d", name, warmIters, coldIters)
		}
		// Single-stage scorers leave the unused stats slot zero; only
		// stages that actually iterated must report convergence.
		if cold.PrestigeStats.Iterations > 0 && !warm.PrestigeStats.Converged {
			t.Errorf("%s: warm prestige-slot stage did not converge: %+v", name, warm.PrestigeStats)
		}
		if cold.HeteroStats.Iterations > 0 && !warm.HeteroStats.Converged {
			t.Errorf("%s: warm hetero stage did not converge: %+v", name, warm.HeteroStats)
		}
	}
}

// TestScorerWarmCachesAreNamespaced pins the leaderboard-sharing
// contract: ranking with one scorer must not perturb another scorer's
// results on the same engine.
func TestScorerWarmCachesAreNamespaced(t *testing.T) {
	_, net, _ := genPermutedNetwork(t, 300, 1)
	solo := NewEngine(net)
	defer solo.Close()
	want, err := solo.RankScorer(ScorerALEF, nil, scorerTestOptions())
	if err != nil {
		t.Fatal(err)
	}

	shared := NewEngine(net)
	defer shared.Close()
	for _, name := range []string{DefaultScorer, ScorerPrestige, ScorerEWPR} {
		if _, err := shared.RankScorer(name, nil, scorerTestOptions()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	got, err := shared.RankScorer(ScorerALEF, nil, scorerTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.MaxDiff(got.Importance, want.Importance); d > 1e-12 {
		t.Errorf("alef on a shared engine deviates from a fresh engine by %v", d)
	}
}
