package core

import (
	"scholarrank/internal/hetnet"
	"scholarrank/internal/sparse"
)

// Engine ranks a fixed network repeatedly under varying options,
// caching the parameter-independent substrate between calls: the
// citation transition operator (shared by the popularity and hetero
// stages) and one gap-weighted transition per distinct RhoGap value
// (the prestige stage). Parameter sweeps — figures F1 and F2, the
// ablation table, interactive tuning — skip the O(m log m) rebuild
// that a fresh Rank call pays.
//
// An Engine is safe for sequential use only: Rank adjusts worker
// counts on the cached operators.
type Engine struct {
	net      *hetnet.Network
	citTrans *sparse.Transition
	gapTrans map[float64]*sparse.Transition
	// Warm starts: the previous raw prestige solution per RhoGap, and
	// the previous hetero solution. Fixed points do not depend on the
	// starting vector, so warm starting is purely an iteration-count
	// optimisation.
	warmPrestige map[float64][]float64
	warmHetero   []float64
}

// NewEngine wraps a network for repeated ranking. The network must
// not be mutated afterwards.
func NewEngine(net *hetnet.Network) *Engine {
	return &Engine{
		net:          net,
		gapTrans:     make(map[float64]*sparse.Transition),
		warmPrestige: make(map[float64][]float64),
	}
}

// Network returns the wrapped network.
func (e *Engine) Network() *hetnet.Network { return e.net }

func (e *Engine) citationTransition(workers int) *sparse.Transition {
	if e.citTrans == nil {
		e.citTrans = sparse.NewTransition(e.net.Citations, workers)
	}
	e.citTrans.SetWorkers(workers)
	return e.citTrans
}

func (e *Engine) gapTransition(rho float64, workers int) (*sparse.Transition, error) {
	if t, ok := e.gapTrans[rho]; ok {
		t.SetWorkers(workers)
		return t, nil
	}
	if rho == 0 {
		// No decay: the gap-weighted graph equals the citation graph.
		t := e.citationTransition(workers)
		e.gapTrans[0] = t
		return t, nil
	}
	g, err := gapWeightedGraph(e.net, rho)
	if err != nil {
		return nil, err
	}
	t := sparse.NewTransition(g, workers)
	e.gapTrans[rho] = t
	return t, nil
}

// Rank computes QISA-Rank with the given options, reusing cached
// substrate where possible.
func (e *Engine) Rank(opts Options) (*Scores, error) {
	opts = opts.effective()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if e.net.NumArticles() == 0 {
		return &Scores{
			PrestigeStats: sparse.IterStats{Converged: true},
			HeteroStats:   sparse.IterStats{Converged: true},
		}, nil
	}
	// Transition constructors and SetWorkers both treat values < 1 as
	// "use NumCPU", so Workers passes through unmodified.
	workers := opts.Workers
	gapTrans, err := e.gapTransition(opts.RhoGap, workers)
	if err != nil {
		return nil, err
	}
	rawPrestige, pStats, err := computePrestige(e.net, opts, gapTrans, e.warmPrestige[opts.RhoGap])
	if err != nil {
		return nil, err
	}
	e.warmPrestige[opts.RhoGap] = rawPrestige
	prestige, err := applyFade(e.net, opts, rawPrestige)
	if err != nil {
		return nil, err
	}
	popularity := computePopularity(e.net, opts)
	hetero, hStats, err := computeHetero(e.net, opts, e.citationTransition(workers), e.warmHetero)
	if err != nil {
		return nil, err
	}
	e.warmHetero = hetero
	importance, err := combine(opts, prestige, popularity, hetero)
	if err != nil {
		return nil, err
	}
	return &Scores{
		Importance:    importance,
		Prestige:      prestige,
		Popularity:    popularity,
		Hetero:        hetero,
		PrestigeStats: pStats,
		HeteroStats:   hStats,
	}, nil
}
