package core

import (
	"fmt"
	"math"
	"runtime"

	"scholarrank/internal/hetnet"
	"scholarrank/internal/shard"
	"scholarrank/internal/sparse"
)

// Engine ranks a fixed network repeatedly under varying options,
// caching the parameter-independent substrate between calls: the
// citation transition operator (shared by the popularity and hetero
// stages), one gap-weighted transition per distinct RhoGap value (the
// prestige stage), and a persistent worker pool shared by every
// solver kernel. Gap-weighted transitions are derived from the cached
// citation operator with Reweighted, so only the per-edge norm is
// recomputed — the CSR structure, dangling set, and chunk plan are
// shared. Parameter sweeps — figures F1 and F2, the ablation table,
// interactive tuning — skip the O(m log m) rebuild that a fresh Rank
// call pays.
//
// Both iterative stages run in solver space — the network's
// locality-permuted projection (hetnet.SolverView) — and their score
// vectors are mapped back to original article order at the Scores
// boundary, so callers never observe the permutation.
//
// An Engine is safe for sequential use only: Rank adjusts the worker
// pool on the cached operators. Call Close when done to release the
// pool's goroutines; a closed (or never-used) Engine still ranks,
// falling back to serial kernels.
type Engine struct {
	net      *hetnet.Network
	view     *hetnet.SolverView
	pool     *sparse.Pool
	citTrans *sparse.Transition
	gapTrans map[float64]*sparse.Transition
	// Warm starts: previous solver fixed points kept in solver
	// (permuted) space so a resume feeds the solver directly, keyed by
	// scorer-namespaced stage keys (SolveContext.WarmStart/KeepWarm) —
	// e.g. the default pipeline keeps one prestige vector per distinct
	// RhoGap plus its hetero vector. Fixed points do not depend on the
	// starting vector, so warm starting is purely an iteration-count
	// optimisation.
	warm map[string][]float64
	// Sharded-solve substrate: one partition plan per shard count
	// (edge-balanced cuts of the solver-ordered citation graph) and one
	// decomposition per (operator, shard count) pair. Both derive from
	// immutable structure, so they are computed once and shared across
	// solves; the decompositions borrow their operator's worker pool.
	shardPlans map[int]*shard.Plan
	shardTrans map[shardKey]*sparse.ShardedTransition
}

// shardKey identifies one sharded decomposition in the engine cache.
type shardKey struct {
	t      *sparse.Transition
	shards int
}

// prestige returns the explicit prestige seed, nil-safe.
func (in *InitialScores) prestige() []float64 {
	if in == nil {
		return nil
	}
	return in.Prestige
}

// hetero returns the explicit hetero seed, nil-safe.
func (in *InitialScores) hetero() []float64 {
	if in == nil {
		return nil
	}
	return in.Hetero
}

// warmVector selects the starting vector for an iterative stage: an
// explicit Options.InitialScores seed wins over the engine's cached
// previous solution; nil means cold start. Explicit seeds arrive in
// original article order (they come from a previous Scores, possibly
// over a different permutation): they are validated against the
// network size, L1-normalised on a copy (solver fixed points are
// probability vectors; a well-scaled start converges in fewer
// sweeps), and mapped into solver space through perm. The cached
// vector is already in solver space. A seed with no mass — all zeros,
// as Resized produces for an all-new corpus — degrades to a cold
// start.
func warmVector(explicit, cached []float64, n int, perm *sparse.Permutation) ([]float64, error) {
	if explicit == nil {
		return cached, nil
	}
	if len(explicit) != n {
		return nil, fmt.Errorf("%w: initial vector length %d, want %d", ErrBadOptions, len(explicit), n)
	}
	v := sparse.Clone(explicit)
	if s := sparse.Normalize1(v); s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, nil
	}
	return perm.Applied(v), nil
}

// NewEngine wraps a network for repeated ranking. The network must
// not be mutated afterwards.
func NewEngine(net *hetnet.Network) *Engine {
	return &Engine{
		net:        net,
		view:       net.SolverView(),
		gapTrans:   make(map[float64]*sparse.Transition),
		warm:       make(map[string][]float64),
		shardPlans: make(map[int]*shard.Plan),
		shardTrans: make(map[shardKey]*sparse.ShardedTransition),
	}
}

// Network returns the wrapped network.
func (e *Engine) Network() *hetnet.Network { return e.net }

// Close releases the engine's worker pool. The engine remains usable;
// subsequent Rank calls re-create the pool on demand.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// ensurePool returns a pool sized for the requested worker count
// (values < 1 mean NumCPU), reusing the cached one when the size
// matches and re-spawning it otherwise. The count is clamped to
// GOMAXPROCS: extra worker goroutines cannot add CPU throughput, they
// only add scheduling overhead to every kernel sweep.
func (e *Engine) ensurePool(workers int) *sparse.Pool {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if e.pool != nil && e.pool.Workers() == workers {
		return e.pool
	}
	if e.pool != nil {
		e.pool.Close()
	}
	e.pool = sparse.NewPool(workers)
	return e.pool
}

func (e *Engine) citationTransition(pool *sparse.Pool) *sparse.Transition {
	if e.citTrans == nil {
		e.citTrans = sparse.NewTransition(e.view.Citations, pool)
	}
	e.citTrans.SetPool(pool)
	return e.citTrans
}

func (e *Engine) gapTransition(rho float64, pool *sparse.Pool) (*sparse.Transition, error) {
	if t, ok := e.gapTrans[rho]; ok {
		t.SetPool(pool)
		return t, nil
	}
	if rho == 0 {
		// No decay: the gap-weighted graph equals the citation graph.
		t := e.citationTransition(pool)
		e.gapTrans[0] = t
		return t, nil
	}
	weight, err := gapWeightFunc(e.view.Years, rho)
	if err != nil {
		return nil, err
	}
	t := e.citationTransition(pool).Reweighted(weight)
	e.gapTrans[rho] = t
	return t, nil
}

// shardPlan returns the engine's cached edge-balanced partition of
// the solver-ordered citation graph for the given shard count,
// computing it on first use. Partition clamps counts above the row
// count, so the plan's Shards() may be lower than requested.
func (e *Engine) shardPlan(shards int) (*shard.Plan, error) {
	if p, ok := e.shardPlans[shards]; ok {
		return p, nil
	}
	p, err := shard.Partition(e.view.Citations, shards)
	if err != nil {
		return nil, fmt.Errorf("core: shard partition: %w", err)
	}
	e.shardPlans[shards] = p
	return p, nil
}

// sharded returns the cached sharded decomposition of t over the plan
// for the given shard count. The decomposition borrows t — SetPool on
// t (which the transition accessors call per solve) propagates to
// every sharded kernel, so all shards share one worker pool.
func (e *Engine) sharded(t *sparse.Transition, shards int) (*sparse.ShardedTransition, error) {
	key := shardKey{t: t, shards: shards}
	if st, ok := e.shardTrans[key]; ok {
		return st, nil
	}
	plan, err := e.shardPlan(shards)
	if err != nil {
		return nil, err
	}
	st, err := sparse.NewShardedTransition(t, plan.Bounds)
	if err != nil {
		return nil, fmt.Errorf("core: shard decomposition: %w", err)
	}
	e.shardTrans[key] = st
	return st, nil
}

// Rank computes QISA-Rank — the registered default scorer — with the
// given options, reusing cached substrate where possible.
func (e *Engine) Rank(opts Options) (*Scores, error) {
	return e.RankScorer(DefaultScorer, nil, opts)
}

// RankScorer ranks with the named registered scorer, constructed from
// the given option bag (nil selects every scorer default). The rank
// Options drive shared machinery — workers, iteration control, trace
// hooks, decay rates — while the bag carries scorer-specific knobs.
func (e *Engine) RankScorer(name string, sopts ScorerOptions, opts Options) (*Scores, error) {
	s, err := NewScorer(name, sopts)
	if err != nil {
		return nil, err
	}
	sc, err := e.RankWith(s, opts)
	if err != nil {
		return nil, err
	}
	sc.ScorerOpts = sopts.Clone()
	return sc, nil
}

// RankWith ranks with an explicit scorer instance: validates and
// applies the options, builds the solve context over the engine's
// cached substrate, runs the scorer, and assembles the result.
func (e *Engine) RankWith(s Scorer, opts Options) (*Scores, error) {
	opts = opts.effective()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if e.net.NumArticles() == 0 {
		return &Scores{
			Scorer:        s.Name(),
			PrestigeStats: sparse.IterStats{Converged: true},
			HeteroStats:   sparse.IterStats{Converged: true},
		}, nil
	}
	pool := e.ensurePool(opts.Workers)
	ctx := &SolveContext{eng: e, pool: pool, opts: opts, scorer: s.Name()}
	importance, err := s.Score(ctx)
	if err != nil {
		return nil, err
	}
	sc := ctx.comps
	if sc == nil {
		sc = &Scores{}
	}
	sc.Importance = importance
	sc.Scorer = s.Name()
	sc.Pool = pool.Stats()
	return sc, nil
}
