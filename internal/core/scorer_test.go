package core

import (
	"errors"
	"testing"

	"scholarrank/internal/sparse"
)

func TestScorerNames(t *testing.T) {
	names := ScorerNames()
	if len(names) == 0 || names[0] != DefaultScorer {
		t.Fatalf("ScorerNames() = %v, want %q first", names, DefaultScorer)
	}
	want := map[string]bool{
		DefaultScorer: true, ScorerPrestige: true, ScorerPopularity: true,
		ScorerHetero: true, ScorerEWPR: true, ScorerALEF: true,
	}
	for _, name := range names {
		delete(want, name)
		if doc, ok := ScorerDoc(name); !ok || doc == "" {
			t.Errorf("scorer %q has no description", name)
		}
	}
	if len(want) != 0 {
		t.Errorf("registry is missing scorers: %v", want)
	}
}

func TestNewScorerUnknown(t *testing.T) {
	if _, err := NewScorer("no-such-scorer", nil); !errors.Is(err, ErrUnknownScorer) {
		t.Fatalf("err = %v, want ErrUnknownScorer", err)
	}
}

func TestScorerOptionValidation(t *testing.T) {
	cases := []struct {
		scorer string
		opts   ScorerOptions
	}{
		{DefaultScorer, ScorerOptions{"bogus": 1}},
		{ScorerEWPR, ScorerOptions{"bogus": 1}},
		{ScorerEWPR, ScorerOptions{"damping": 1.5}},
		{ScorerEWPR, ScorerOptions{"venue_gamma": -1}},
		{ScorerALEF, ScorerOptions{"damping": 0}},
		{ScorerALEF, ScorerOptions{"venue_gamma": 0.5}}, // ewpr-only key
	}
	for _, c := range cases {
		if _, err := NewScorer(c.scorer, c.opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("NewScorer(%q, %v) err = %v, want ErrBadOptions", c.scorer, c.opts, err)
		}
	}
	if _, err := NewScorer(ScorerEWPR, ScorerOptions{"damping": 0.9, "venue_gamma": 1, "author_gamma": 0}); err != nil {
		t.Errorf("valid ewpr bag rejected: %v", err)
	}
}

func TestScorerOptionsGetClone(t *testing.T) {
	var nilBag ScorerOptions
	if v := nilBag.Get("damping", 0.85); v != 0.85 {
		t.Errorf("nil bag Get = %v, want default", v)
	}
	if nilBag.Clone() != nil {
		t.Error("nil bag Clone should stay nil")
	}
	bag := ScorerOptions{"damping": 0.5}
	if v := bag.Get("damping", 0.85); v != 0.5 {
		t.Errorf("Get = %v, want 0.5", v)
	}
	c := bag.Clone()
	c["damping"] = 0.7
	if bag["damping"] != 0.5 {
		t.Error("Clone aliases the original bag")
	}
}

func TestRegisterScorerDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterScorer did not panic")
		}
	}()
	RegisterScorer(DefaultScorer, "dup", func(ScorerOptions) (Scorer, error) { return qisaScorer{}, nil })
}

// TestRankScorerComponents checks which component vectors each scorer
// deposits, and that the Scorer/ScorerOpts metadata lands on the
// result.
func TestRankScorerComponents(t *testing.T) {
	_, net := genNetwork(t, 200)
	eng := NewEngine(net)
	defer eng.Close()
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Iter = sparse.IterOptions{Tol: 1e-10, MaxIter: 500}

	cases := []struct {
		scorer                       string
		bag                          ScorerOptions
		prestige, popularity, hetero bool
	}{
		{DefaultScorer, nil, true, true, true},
		{ScorerPrestige, nil, true, false, false},
		{ScorerPopularity, nil, false, true, false},
		{ScorerHetero, nil, false, false, true},
		{ScorerEWPR, ScorerOptions{"damping": 0.8}, false, false, false},
		{ScorerALEF, nil, false, false, false},
	}
	for _, c := range cases {
		sc, err := eng.RankScorer(c.scorer, c.bag, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.scorer, err)
		}
		if sc.Scorer != c.scorer {
			t.Errorf("%s: Scores.Scorer = %q", c.scorer, sc.Scorer)
		}
		if len(sc.Importance) != net.NumArticles() {
			t.Errorf("%s: importance length %d, want %d", c.scorer, len(sc.Importance), net.NumArticles())
		}
		if (sc.Prestige != nil) != c.prestige || (sc.Popularity != nil) != c.popularity || (sc.Hetero != nil) != c.hetero {
			t.Errorf("%s: components prestige=%v popularity=%v hetero=%v, want %v/%v/%v",
				c.scorer, sc.Prestige != nil, sc.Popularity != nil, sc.Hetero != nil,
				c.prestige, c.popularity, c.hetero)
		}
		if c.bag != nil && sc.ScorerOpts["damping"] != c.bag["damping"] {
			t.Errorf("%s: ScorerOpts = %v, want %v", c.scorer, sc.ScorerOpts, c.bag)
		}
		var total float64
		for _, v := range sc.Importance {
			if v < 0 {
				t.Errorf("%s: negative importance %v", c.scorer, v)
				break
			}
			total += v
		}
		if total <= 0 {
			t.Errorf("%s: importance has no mass", c.scorer)
		}
	}
}

// TestScorersProduceDistinctRankings is a sanity check that the new
// baselines are not accidental aliases of the default pipeline.
func TestScorersProduceDistinctRankings(t *testing.T) {
	_, net := genNetwork(t, 300)
	eng := NewEngine(net)
	defer eng.Close()
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Iter = sparse.IterOptions{Tol: 1e-10, MaxIter: 500}
	def, err := eng.RankScorer(DefaultScorer, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ScorerEWPR, ScorerALEF} {
		sc, err := eng.RankScorer(name, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sparse.MaxDiff(sc.Importance, def.Importance) < 1e-9 {
			t.Errorf("%s: importance is numerically identical to the default pipeline", name)
		}
	}
}
