// Benchmarks regenerating every table and figure of the evaluation
// (DESIGN.md §3). Each benchmark runs the corresponding experiment
// and prints its rows on the first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full result set. Set QISA_BENCH_QUICK=1 to run on
// shrunken corpora (seconds instead of minutes); EXPERIMENTS.md
// records the full-size numbers.
package scholarrank_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"scholarrank/internal/experiments"
)

// benchOptions honours QISA_BENCH_QUICK (shrunken corpora) and
// QISA_BENCH_WORKERS (solver parallelism; default 1 so benchmark
// numbers are comparable across machines unless deliberately scaled).
func benchOptions() experiments.Options {
	workers := 1
	if v := os.Getenv("QISA_BENCH_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			workers = n
		}
	}
	return experiments.Options{
		Quick:   os.Getenv("QISA_BENCH_QUICK") == "1",
		Workers: workers,
	}
}

var printOnce sync.Map // experiment id -> struct{}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, printed := printOnce.LoadOrStore(id, struct{}{}); !printed {
			b.StopTimer()
			fmt.Println()
			for _, t := range tables {
				if err := t.Render(os.Stdout); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
	}
}

func BenchmarkTable1CorpusStats(b *testing.B)    { benchExperiment(b, "T1") }
func BenchmarkTable2Effectiveness(b *testing.B)  { benchExperiment(b, "T2") }
func BenchmarkTable3AwardRecall(b *testing.B)    { benchExperiment(b, "T3") }
func BenchmarkTable4Scalability(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkTable5Ablation(b *testing.B)       { benchExperiment(b, "T5") }
func BenchmarkTable6EntityRanking(b *testing.B)  { benchExperiment(b, "T6") }
func BenchmarkTable7Retrieval(b *testing.B)      { benchExperiment(b, "T7") }
func BenchmarkTable8Variance(b *testing.B)       { benchExperiment(b, "T8") }
func BenchmarkFigure1DecaySweep(b *testing.B)    { benchExperiment(b, "F1") }
func BenchmarkFigure2EnsembleSweep(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkFigure3Convergence(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkFigure4ColdStart(b *testing.B)     { benchExperiment(b, "F4") }
func BenchmarkFigure5Sparsity(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkFigure6Parallel(b *testing.B)      { benchExperiment(b, "F6") }
func BenchmarkFigure7Solver(b *testing.B)        { benchExperiment(b, "F7") }
func BenchmarkFigure8MetadataNoise(b *testing.B) { benchExperiment(b, "F8") }
func BenchmarkFigure9FieldNorm(b *testing.B)     { benchExperiment(b, "F9") }
