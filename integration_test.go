package scholarrank_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"scholarrank"
)

// TestEndToEndPipeline drives the full production pipeline through
// the public API: generate → snapshot to binary → reload → rank →
// holdout evaluation → entity rankings, asserting cross-stage
// consistency at every step.
func TestEndToEndPipeline(t *testing.T) {
	cfg := scholarrank.DefaultGeneratorConfig(2500)
	cfg.Seed = 777
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot round trip must preserve the ranking exactly.
	var buf bytes.Buffer
	if err := scholarrank.WriteBinary(&buf, gc.Store); err != nil {
		t.Fatal(err)
	}
	reloaded, err := scholarrank.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	netA := scholarrank.BuildNetwork(gc.Store)
	netB := scholarrank.BuildNetwork(reloaded)
	scoresA, err := scholarrank.Rank(netA, scholarrank.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	scoresB, err := scholarrank.Rank(netB, scholarrank.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range scoresA.Importance {
		if scoresA.Importance[i] != scoresB.Importance[i] {
			t.Fatalf("snapshot changed ranking at %d: %v vs %v",
				i, scoresA.Importance[i], scoresB.Importance[i])
		}
	}

	// Holdout evaluation: the ranking computed on the past must beat
	// a coin flip on the future, and beat raw citation counts.
	minY, maxY := gc.Store.YearRange()
	hold, err := scholarrank.SplitByYear(gc.Store, minY+(maxY-minY)*8/10)
	if err != nil {
		t.Fatal(err)
	}
	trainNet := scholarrank.BuildNetwork(hold.Train)
	trainScores, err := scholarrank.Rank(trainNet, scholarrank.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	qisaAcc, _, err := scholarrank.PairwiseAccuracy(trainScores.Importance, hold.FutureCites, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	cc := scholarrank.CiteCount(trainNet)
	ccAcc, _, err := scholarrank.PairwiseAccuracy(cc.Scores, hold.FutureCites, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if qisaAcc <= ccAcc {
		t.Errorf("QISA %v did not beat CiteCount %v on the pipeline corpus", qisaAcc, ccAcc)
	}

	// Entity rankings line up with the network dimensions.
	authors, err := scholarrank.AuthorRank(trainNet, trainScores.Importance, scholarrank.EntityRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(authors) != hold.Train.NumAuthors() {
		t.Errorf("author scores = %d, authors = %d", len(authors), hold.Train.NumAuthors())
	}
}

// Property: on arbitrary generated corpora, Rank returns importance
// in [0,1], aligned with the corpus, and fully deterministic.
func TestQuickRankInvariants(t *testing.T) {
	f := func(seed int64) bool {
		size := seed % 7
		if size < 0 {
			size = -size
		}
		cfg := scholarrank.DefaultGeneratorConfig(300 + int(size)*100)
		cfg.Seed = seed
		gc, err := scholarrank.GenerateCorpus(cfg)
		if err != nil {
			return false
		}
		net := scholarrank.BuildNetwork(gc.Store)
		a, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
		if err != nil {
			return false
		}
		if len(a.Importance) != gc.Store.NumArticles() {
			return false
		}
		for _, v := range a.Importance {
			if v < 0 || v > 1 || v != v {
				return false
			}
		}
		b, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
		if err != nil {
			return false
		}
		for i := range a.Importance {
			if a.Importance[i] != b.Importance[i] {
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(2)),
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}
