// Trendwatch: separate *established* from *emerging* work.
//
// QISA-Rank exposes its component signals, so an application can do
// more than sort by one number: this example classifies articles by
// comparing their prestige percentile (long-run standing) with their
// popularity percentile (current attention) and reports
//
//   - classics:  high prestige, high popularity
//   - dormant:   high prestige, low popularity (citation legacy only)
//   - trending:  low prestige so far, high popularity (rising work)
//
// Run with:
//
//	go run ./examples/trendwatch
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	cfg := scholarrank.DefaultGeneratorConfig(6000)
	cfg.Seed = 7
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := scholarrank.BuildNetwork(gc.Store)
	scores, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	prestigePct := scholarrank.Percentiles(scores.Prestige)
	popularityPct := scholarrank.Percentiles(scores.Popularity)

	// Classify by the *gap* between the two percentiles: absolute
	// thresholds are fragile because both signals are citation-driven
	// and correlated.
	const top, gap = 0.95, 0.2
	var classics, dormant, trending []int
	for i := range prestigePct {
		p, q := prestigePct[i], popularityPct[i]
		switch {
		case p >= top && q >= top:
			classics = append(classics, i)
		case p >= 0.9 && p-q >= gap:
			dormant = append(dormant, i)
		case q >= 0.9 && q-p >= gap:
			trending = append(trending, i)
		}
	}

	report := func(label string, items []int) {
		fmt.Printf("\n%s (%d articles; first 5):\n", label, len(items))
		for n, i := range items {
			if n == 5 {
				break
			}
			a := gc.Store.Article(scholarrank.ArticleID(i))
			fmt.Printf("  %s (%d): prestige-pct %.3f, popularity-pct %.3f\n",
				a.Key, a.Year, prestigePct[i], popularityPct[i])
		}
	}
	report("classics — high prestige, high current attention", classics)
	report("dormant — high prestige, attention has moved on", dormant)
	report("trending — attention outrunning citation record", trending)

	fmt.Printf("\nmean publication year: classics %.0f, dormant %.0f, trending %.0f\n",
		meanYear(gc.Store, classics), meanYear(gc.Store, dormant), meanYear(gc.Store, trending))

	// Sleeping beauties: the citation-dynamics view of the same
	// phenomenon — articles that slept for years before the field
	// caught up with them.
	sleepers, beauties, err := scholarrank.SleepingBeauties(gc.Store, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsleeping beauties (highest beauty coefficient):")
	for _, i := range sleepers {
		a := gc.Store.Article(scholarrank.ArticleID(i))
		b := beauties[i]
		fmt.Printf("  %s (%d): B=%.1f, woke after %d years, peaked at %d citations/yr\n",
			a.Key, a.Year, b.Coefficient, b.AwakeningIndex, b.PeakCitations)
	}
}

func meanYear(s *scholarrank.Store, items []int) float64 {
	if len(items) == 0 {
		return 0
	}
	var sum float64
	for _, i := range items {
		sum += float64(s.Article(scholarrank.ArticleID(i)).Year)
	}
	return sum / float64(len(items))
}
