// Risingstar: replay history and watch the ranking react.
//
// The corpus is revealed one cutoff year at a time, the ranking is
// recomputed on each snapshot, and the example tracks how quickly
// each method surfaces a "rising star" — an article that ends up
// among the corpus's most-cited but starts with nothing. The earlier
// a method moves it into the top percentiles, the better the method
// handles the cold-start regime the paper targets.
//
// Run with:
//
//	go run ./examples/risingstar
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	cfg := scholarrank.DefaultGeneratorConfig(6000)
	cfg.Seed = 404
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	minY, maxY := gc.Store.YearRange()

	// The rising star: the most-cited article published in the last
	// third of the timeline.
	net := scholarrank.BuildNetwork(gc.Store)
	in := net.Citations.InDegrees()
	cutYoung := minY + (maxY-minY)*2/3
	star := -1
	for i, d := range in {
		if gc.Store.Article(scholarrank.ArticleID(i)).Year >= cutYoung {
			if star < 0 || d > in[star] {
				star = i
			}
		}
	}
	starKey := gc.Store.Article(scholarrank.ArticleID(star)).Key
	starYear := gc.Store.Article(scholarrank.ArticleID(star)).Year
	fmt.Printf("rising star: %s (published %d, ends with %d citations)\n\n", starKey, starYear, in[star])

	// The library does the replay: RankHistory re-ranks the corpus at
	// each cutoff and returns the article's trajectory.
	var cutoffs []int
	for cutoff := starYear; cutoff <= maxY; cutoff += 2 {
		cutoffs = append(cutoffs, cutoff)
	}
	hist, err := scholarrank.RankHistory(gc.Store, []string{starKey}, cutoffs, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Citation-count comparison per snapshot, computed alongside.
	fmt.Println("snapshot  citations-so-far  pct(QISA)  pct(CiteCount)")
	for _, sn := range hist[0].Snapshots {
		hold, err := scholarrank.SplitByYear(gc.Store, sn.Cutoff)
		if err != nil {
			log.Fatal(err)
		}
		id, _ := hold.Train.ArticleByKey(starKey)
		snapNet := scholarrank.BuildNetwork(hold.Train)
		cc := scholarrank.CiteCount(snapNet)
		ccPct := scholarrank.Percentiles(cc.Scores)[id]
		fmt.Printf("%8d  %16d  %9.3f  %14.3f\n", sn.Cutoff, sn.Citations, sn.Percentile, ccPct)
	}
	fmt.Println("\npct = rank percentile at that snapshot (1.0 = top of the corpus).")
	fmt.Println("QISA-Rank surfaces the article while its citation count is still tiny.")
}
