// Searchblend: the motivating application — academic search.
//
// A search engine scores results by query relevance; a
// query-independent importance prior breaks ties and surfaces the
// papers worth reading. This example builds a synthetic topical query
// workload, then sweeps the blending weight
//
//	lambda·relevance + (1-lambda)·importance
//
// for two priors (QISA-Rank and raw citation counts) and prints the
// resulting retrieval quality curve. The shape to look for: an
// interior optimum (pure relevance is beaten by mixing in the prior),
// with the stronger prior giving the higher curve.
//
// Run with:
//
//	go run ./examples/searchblend
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	cfg := scholarrank.DefaultGeneratorConfig(8000)
	cfg.Seed = 77
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Evaluate the way the paper family does: rank on the visible
	// past, score against the hidden future. Gains for a query are
	// the future citations of its topical articles.
	minY, maxY := gc.Store.YearRange()
	hold, err := scholarrank.SplitByYear(gc.Store, minY+(maxY-minY)*8/10)
	if err != nil {
		log.Fatal(err)
	}
	net := scholarrank.BuildNetwork(hold.Train)

	wopts := scholarrank.DefaultWorkloadOptions()
	wopts.Queries = 150
	queries, err := scholarrank.BuildWorkload(net, hold.FutureCites, wopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d queries, %d relevant + %d distractors each\n\n",
		wopts.Queries, wopts.TopicSize, wopts.Distractors)

	qisa, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cc := scholarrank.CiteCount(net)

	priors := []struct {
		name   string
		scores []float64
	}{
		{"QISA-Rank", qisa.Importance},
		{"CiteCount", cc.Scores},
	}
	fmt.Println("lambda  NDCG@10(QISA)  NDCG@10(CiteCount)")
	sweeps := make([][]scholarrank.LambdaPoint, len(priors))
	for i, p := range priors {
		_, sweep, err := scholarrank.BestBlendLambda(queries, p.scores, 10)
		if err != nil {
			log.Fatal(err)
		}
		sweeps[i] = sweep
	}
	for j := range sweeps[0] {
		fmt.Printf("%6.1f  %13.4f  %18.4f\n",
			sweeps[0][j].Lambda, sweeps[0][j].NDCG, sweeps[1][j].NDCG)
	}

	for i, p := range priors {
		best, sweep := 0.0, sweeps[i]
		bestNDCG := -1.0
		for _, pt := range sweep {
			if pt.NDCG > bestNDCG {
				bestNDCG, best = pt.NDCG, pt.Lambda
			}
		}
		pure := sweep[len(sweep)-1].NDCG // lambda = 1
		fmt.Printf("\n%s: best lambda %.1f, NDCG %.4f (pure relevance %.4f, +%.1f%%)",
			p.name, best, bestNDCG, pure, (bestNDCG-pure)/pure*100)
	}
	fmt.Println()
}
