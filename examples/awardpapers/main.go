// Awardpapers: the "find tomorrow's award papers today" scenario.
//
// A synthetic corpus is generated, the timeline is cut at 80%, and
// each ranking method sees only the past. The articles that go on to
// collect the most citations in the hidden future are the "award
// papers"; the example reports how many of them each method already
// placed in its top 100.
//
// Run with:
//
//	go run ./examples/awardpapers
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	cfg := scholarrank.DefaultGeneratorConfig(8000)
	cfg.Seed = 2024
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	minY, maxY := gc.Store.YearRange()
	cutoff := minY + (maxY-minY)*8/10
	hold, err := scholarrank.SplitByYear(gc.Store, cutoff)
	if err != nil {
		log.Fatal(err)
	}
	net := scholarrank.BuildNetwork(hold.Train)
	fmt.Printf("corpus: %d articles, visible through %d: %d articles, %d citations\n",
		gc.Store.NumArticles(), cutoff, hold.Train.NumArticles(), hold.Train.NumCitations())

	// "Award papers": top 50 by future citations.
	const awards = 50
	award := make(map[int]bool, awards)
	for _, i := range scholarrank.TopK(hold.FutureCites, awards) {
		award[i] = true
	}

	type contender struct {
		name   string
		scores []float64
	}
	var contenders []contender

	cc := scholarrank.CiteCount(net)
	contenders = append(contenders, contender{"CiteCount", cc.Scores})

	pr, err := scholarrank.PageRank(net, scholarrank.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"PageRank", pr.Scores})

	qisa, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"QISA-Rank", qisa.Importance})

	fmt.Printf("\n%-10s  %-9s  %-9s\n", "method", "recall@100", "pairwise-acc")
	for _, c := range contenders {
		recall := scholarrank.RecallAtK(c.scores, award, 100)
		acc, _, err := scholarrank.PairwiseAccuracy(c.scores, hold.FutureCites, nil, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %9.3f  %12.3f\n", c.name, recall, acc)
	}

	fmt.Println("\nfuture award papers QISA-Rank already surfaces in its top 20:")
	for pos, i := range scholarrank.TopK(qisa.Importance, 20) {
		if !award[i] {
			continue
		}
		a := hold.Train.Article(scholarrank.ArticleID(i))
		fmt.Printf("  rank %2d: %s (%d) — %.0f future citations\n",
			pos+1, a.Key, a.Year, hold.FutureCites[i])
	}
}
