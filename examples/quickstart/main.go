// Quickstart: build a small corpus by hand, rank it with QISA-Rank,
// and print the scores with their component signals.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	b := scholarrank.NewBuilder()

	// Two authors and one venue.
	hopper, err := b.InternAuthor("hopper", "G. Hopper")
	check(err)
	lovelace, err := b.InternAuthor("lovelace", "A. Lovelace")
	check(err)
	icde, err := b.InternVenue("icde", "ICDE")
	check(err)

	// A miniature literature: a 1998 foundational article, two
	// mid-2000s follow-ups, a 2015 survey, and a brand-new 2017
	// article with no citations yet.
	type spec struct {
		key, title string
		year       int
		venue      scholarrank.VenueID
		authors    []scholarrank.AuthorID
	}
	specs := []spec{
		{"found98", "Foundations of Query Independent Ranking", 1998, icde, []scholarrank.AuthorID{hopper}},
		{"walk04", "Random Walks on Citation Graphs", 2004, icde, []scholarrank.AuthorID{hopper, lovelace}},
		{"time06", "Temporal Signals for Article Importance", 2006, scholarrank.NoVenue, []scholarrank.AuthorID{lovelace}},
		{"survey15", "A Survey of Scholarly Ranking", 2015, icde, []scholarrank.AuthorID{lovelace}},
		{"fresh17", "A Fresh Idea (No Citations Yet)", 2017, icde, []scholarrank.AuthorID{hopper}},
	}
	ids := map[string]scholarrank.ArticleID{}
	for _, sp := range specs {
		id, err := b.AddArticle(scholarrank.ArticleMeta{
			Key: sp.key, Title: sp.title, Year: sp.year,
			Venue: sp.venue, Authors: sp.authors,
		})
		check(err)
		ids[sp.key] = id
	}
	cite := func(from, to string) {
		check(b.AddCitation(ids[from], ids[to]))
	}
	cite("walk04", "found98")
	cite("time06", "found98")
	cite("time06", "walk04")
	cite("survey15", "found98")
	cite("survey15", "walk04")
	cite("survey15", "time06")

	// Rank. The default time constants are tuned for corpus-scale
	// ranking (100k+ articles); on a 5-article toy we soften the
	// recency decay so two decades of literature stay comparable —
	// and demonstrate the Options API while at it.
	store := b.Freeze()
	net := scholarrank.BuildNetwork(store)
	opts := scholarrank.DefaultOptions()
	opts.RhoRecency = 0.15
	opts.RhoFade = 0.02
	scores, err := scholarrank.Rank(net, opts)
	check(err)

	fmt.Println("rank  importance  prestige  popularity  hetero  article")
	for pos, i := range scholarrank.TopK(scores.Importance, len(specs)) {
		a := store.Article(scholarrank.ArticleID(i))
		fmt.Printf("%4d  %10.4f  %8.4f  %10.4f  %6.4f  %s (%d)\n",
			pos+1, scores.Importance[i], scores.Prestige[i],
			scores.Popularity[i], scores.Hetero[i], a.Title, a.Year)
	}
	fmt.Println()
	fmt.Println("Note how fresh17 is uncited yet still scores on the hetero")
	fmt.Println("signal: it inherits from its author's track record.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
