// Authorleaders: rank authors and venues, not just articles.
//
// Query-independent article scores induce entity rankings: an
// author's standing is an aggregate of their articles' importance.
// The aggregation rule matters — summing rewards volume, averaging
// rewards precision, and the Bayesian-shrunk mean (the default)
// keeps one-hit authors from topping the list on a single lucky
// article. Because the corpus is synthetic, the example can also
// report how well each rule recovers the *planted* author talent.
//
// Run with:
//
//	go run ./examples/authorleaders
package main

import (
	"fmt"
	"log"

	"scholarrank"
)

func main() {
	log.SetFlags(0)

	cfg := scholarrank.DefaultGeneratorConfig(6000)
	cfg.Seed = 31
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := scholarrank.BuildNetwork(gc.Store)
	scores, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	rules := []struct {
		name string
		agg  scholarrank.EntityAggregate
	}{
		{"sum (volume-rewarding)", scholarrank.AggSum},
		{"mean (volume-neutral)", scholarrank.AggMean},
		{"shrunk mean (default)", scholarrank.AggShrunkMean},
	}
	fmt.Println("author-ranking quality vs planted talent, by aggregation rule:")
	for _, r := range rules {
		authors, err := scholarrank.AuthorRank(net, scores.Importance, scholarrank.EntityRankOptions{Aggregate: r.agg})
		if err != nil {
			log.Fatal(err)
		}
		acc, _, err := scholarrank.PairwiseAccuracy(authors, gc.AuthorTalent, nil, 100_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s pairwise accuracy %.3f\n", r.name, acc)
	}

	authors, err := scholarrank.AuthorRank(net, scores.Importance, scholarrank.EntityRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 10 authors (shrunk mean):")
	for pos, i := range scholarrank.TopK(authors, 10) {
		a := gc.Store.Author(scholarrank.AuthorID(i))
		fmt.Printf("  %2d. %-12s score %.4f  articles %d  planted talent %.2f\n",
			pos+1, a.Name, authors[i],
			len(net.AuthorArticles(scholarrank.AuthorID(i))), gc.AuthorTalent[i])
	}

	venues, err := scholarrank.VenueRank(net, scores.Importance, scholarrank.EntityRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 venues (shrunk mean):")
	for pos, i := range scholarrank.TopK(venues, 5) {
		v := gc.Store.Venue(scholarrank.VenueID(i))
		fmt.Printf("  %2d. %-10s score %.4f  planted prestige %.2f\n",
			pos+1, v.Name, venues[i], gc.VenuePrestige[i])
	}
}
