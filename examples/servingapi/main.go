// Servingapi: the offline-scoring pipeline a search stack consumes.
//
// Query-independent scores are computed in a batch job and exported
// as a static artifact (here JSON on stdout) that a retrieval system
// combines with query relevance at serving time. This example runs
// that batch job end to end: generate/load a corpus, rank it, and
// emit the serving artifact, including the blending weight the
// evaluation found best.
//
// Run with:
//
//	go run ./examples/servingapi > scores.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"scholarrank"
)

// servingDoc is one exported document score.
type servingDoc struct {
	Key        string  `json:"key"`
	Year       int     `json:"year"`
	Importance float64 `json:"importance"`
}

// artifact is the versioned export a serving stack loads at startup.
type artifact struct {
	Version       string `json:"version"`
	Articles      int    `json:"articles"`
	PrestigeIters int    `json:"prestige_iters"`
	HeteroIters   int    `json:"hetero_iters"`
	// BlendWeight is the recommended interpolation
	// score = blend*relevance + (1-blend)*importance.
	BlendWeight float64      `json:"blend_weight"`
	Docs        []servingDoc `json:"docs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("servingapi: ")

	cfg := scholarrank.DefaultGeneratorConfig(3000)
	cfg.Seed = 99
	gc, err := scholarrank.GenerateCorpus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	net := scholarrank.BuildNetwork(gc.Store)
	scores, err := scholarrank.Rank(net, scholarrank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	out := artifact{
		Version:       "qisa-rank/1",
		Articles:      gc.Store.NumArticles(),
		PrestigeIters: scores.PrestigeStats.Iterations,
		HeteroIters:   scores.HeteroStats.Iterations,
		BlendWeight:   0.7,
	}
	// Export only the head of the ranking: serving stacks rarely need
	// a static prior below the retrieval cutoff.
	for _, i := range scholarrank.TopK(scores.Importance, 200) {
		a := gc.Store.Article(scholarrank.ArticleID(i))
		out.Docs = append(out.Docs, servingDoc{
			Key: a.Key, Year: a.Year, Importance: scores.Importance[i],
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "servingapi: exported %d docs (of %d articles)\n", len(out.Docs), out.Articles)
}
