GO ?= go

.PHONY: check vet build test test-race bench-quick bench

## check: everything CI runs — vet, build, race-detector tests on the
## parallel packages, then the full test suite.
check: vet build test-race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: the packages that exercise the worker pool, fused
## kernels and the hot-swap serving path, under the race detector.
test-race:
	$(GO) test -race ./internal/sparse/... ./internal/core/... ./internal/hetnet/... ./internal/live/... ./internal/serve/...

## bench-quick: the headline solver benchmark on the shrunken corpus
## (seconds; EXPERIMENTS.md §F6 records the reference numbers).
bench-quick:
	QISA_BENCH_QUICK=1 $(GO) test -run xxx -bench 'BenchmarkFigure6Parallel$$' -benchtime 20x -benchmem .

## bench: every table/figure benchmark on the full-size corpora.
bench:
	$(GO) test -run xxx -bench . -benchmem .
