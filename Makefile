GO ?= go

.PHONY: check vet lint fmt fuzz-smoke build test test-race bench-quick bench bench-json bench-load bench-eval

## check: everything CI runs — vet, lint, build, race-detector tests on
## the parallel packages, then the full test suite.
check: vet lint build test-race test

vet:
	$(GO) vet ./...

## lint: style gates with no external tooling. All logging goes through
## the component loggers in internal/obs, so a bare log.Printf anywhere
## else is a regression. Also runs gofmt and a short fuzz pass over the
## corpus decoders, so the parsers get adversarial input on every
## check, not only when someone remembers to fuzz.
lint: fmt fuzz-smoke
	@bad=$$(grep -rn 'log\.Printf' --include='*.go' . | grep -v '^\./internal/obs/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: log.Printf outside internal/obs (use obs.Logger):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn 'context\.Background()' --include='*.go' internal/serve/ | grep -v '_test\.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: context.Background() in internal/serve (handlers must inherit the request context; background work uses Tracer.BackgroundContext):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn 'computePrestige\|computeHetero\|computePopularity\|applyFade' --include='*.go' . | grep -v '^\./internal/core/' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: solver phase call outside internal/core (rank through the scorer registry — core.RankScorer or Engine.RankWith):"; \
		echo "$$bad"; exit 1; \
	fi

## fmt: fail on any file gofmt would rewrite.
fmt:
	@bad=$$(gofmt -l .); \
	if [ -n "$$bad" ]; then \
		echo "fmt: files need gofmt:"; echo "$$bad"; exit 1; \
	fi

## fuzz-smoke: 10 seconds each on the decoders that consume untrusted
## bytes — the TSV parser, the SCORP binary reader, and the W3C
## traceparent header parser on the serving path.
fuzz-smoke:
	$(GO) test ./internal/corpus/ -run xxx -fuzz FuzzReadTSV -fuzztime 10s
	$(GO) test ./internal/corpus/ -run xxx -fuzz FuzzReadSCORP -fuzztime 10s
	$(GO) test ./internal/corpus/ -run xxx -fuzz FuzzParseShardManifest -fuzztime 10s
	$(GO) test ./internal/obs/ -run xxx -fuzz FuzzParseTraceparent -fuzztime 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: the packages that exercise the worker pool, fused
## kernels and the hot-swap serving path, under the race detector.
test-race:
	$(GO) test -race ./internal/sparse/... ./internal/core/... ./internal/hetnet/... ./internal/live/... ./internal/serve/... ./internal/obs/...

## bench-quick: the headline solver benchmark on the shrunken corpus
## (seconds; EXPERIMENTS.md §F6 records the reference numbers).
bench-quick:
	QISA_BENCH_QUICK=1 $(GO) test -run xxx -bench 'BenchmarkFigure6Parallel$$' -benchtime 20x -benchmem .

## bench: every table/figure benchmark on the full-size corpora.
bench:
	$(GO) test -run xxx -bench . -benchmem .

## bench-json: machine-readable benchmark artifacts. Runs the
## reordering/extrapolation walk benchmark and the end-to-end parallel
## solve (quick corpus) into BENCH_5.json, then the 100k corpus
## boot-time benchmark (mmap vs heap) into BENCH_6.json, then the
## shard-scaling curve (damped walk over 1/2/4/8 edge-balanced shards
## on the 100k power-law corpus) into BENCH_10.json, via cmd/benchjson.
bench-json:
	@{ \
		QISA_BENCH_QUICK=1 $(GO) test -run xxx -bench 'BenchmarkFigure6Parallel$$' -benchtime 20x -benchmem . && \
		$(GO) test ./internal/sparse/ -run xxx -bench 'BenchmarkDampedWalkPowerLaw|BenchmarkReorderPermutation' -benchtime 5x -benchmem ; \
	} | tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_5.json
	@echo "wrote BENCH_5.json"
	@$(GO) test ./internal/corpus/ -run xxx -bench 'BenchmarkSCORPBoot' -benchtime 20x -benchmem \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_6.json
	@echo "wrote BENCH_6.json"
	@$(GO) test ./internal/sparse/ -run xxx -bench 'BenchmarkShardedWalkPowerLaw100k' -benchtime 3x -count 3 -benchmem \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_10.json
	@echo "wrote BENCH_10.json"

## bench-eval: the scorer leaderboard smoke into BENCH_9.json — every
## registered scorer ranks one tiny synthetic corpus on a shared
## engine, and the artifact records per-scorer cost plus the pairwise
## agreement matrix (Kendall τ-b, Spearman ρ, top-K overlap).
bench-eval:
	$(GO) run ./cmd/sareval -leaderboard -quick -json BENCH_9.json
	@echo "wrote BENCH_9.json"

## bench-load: serving-path load benchmark into BENCH_8.json. Ranks a
## 100k synthetic corpus in-process and drives it with the mixed
## open-loop workload (cmd/loadgen), reporting QPS, per-route
## p50/p95/p99, the /query cache cold-vs-hot speedup, and the
## trace-derived server-side time split (queue wait, cache lookup,
## index execution) aggregated from Server-Timing headers.
bench-load:
	$(GO) run ./cmd/loadgen -smoke -articles 100000 -duration 5s -qps 2000 -o BENCH_8.json
	@echo "wrote BENCH_8.json"
