// Command sarserve exposes a ranked corpus over HTTP: the production
// shape of query-independent ranking, where scores are computed
// offline and served as a static signal to a search stack. The
// ranking can be updated while serving: deltas arrive over
// /admin/ingest or through a watched spool directory, are re-solved
// warm-started from the live scores, and swap in atomically.
//
// Endpoints:
//
//	GET  /healthz                 liveness + ranking version/staleness
//	GET  /stats                   corpus + ranking metadata
//	GET  /top?k=20                top-k articles by importance
//	GET  /article?key=p00000001   one article with its score components
//	GET  /compare?a=KEY&b=KEY     relative order of two articles, with
//	                              the signal breakdown explaining it
//	GET  /authors?k=20            top authors (shrunk-mean aggregation)
//	GET  /venues?k=20             top venues likewise
//	GET  /related?key=KEY&k=10    articles related to KEY (personalised walk)
//	POST /admin/ingest            apply a JSONL delta and re-rank
//	POST /admin/reload            drain the spool and force a re-solve
//	GET  /admin/snapshot          download the current ranking snapshot
//
// Usage:
//
//	sarserve -in corpus.jsonl -addr :8080
//	sarserve -in corpus.jsonl -scores ranking.snap        # boot without solving
//	sarserve -in corpus.jsonl -spool deltas/ -refresh 30s # live updates
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/core"
	"scholarrank/internal/live"
	"scholarrank/internal/serve"
)

// shutdownGrace bounds how long in-flight requests may run after a
// termination signal before the listener is torn down.
const shutdownGrace = 10 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarserve: ")

	var (
		in       = flag.String("in", "", "corpus file (jsonl or tsv); required")
		format   = flag.String("format", "", "corpus format override")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "solver worker threads (0 = all CPUs)")
		scores   = flag.String("scores", "", "ranking snapshot to boot from (skips the initial solve)")
		spool    = flag.String("spool", "", "directory watched for JSONL delta files")
		refresh  = flag.Duration("refresh", 30*time.Second, "spool poll interval (needs -spool)")
		debounce = flag.Duration("debounce", 2*time.Second, "quiet period before a spool batch is ingested")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		log.Fatal("missing -in")
	}

	store, err := cliutil.LoadCorpus(*in, *format)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Workers = *workers
	cfg := serve.Config{
		Options:         opts,
		SpoolDir:        *spool,
		RefreshInterval: *refresh,
		Debounce:        *debounce,
	}

	start := time.Now()
	var srv *serve.Server
	if *scores != "" {
		snap, err := live.ReadSnapshotFile(*scores)
		if err != nil {
			log.Fatal(err)
		}
		if srv, err = serve.NewFromSnapshot(store, snap, cfg); err != nil {
			log.Fatal(err)
		}
		log.Printf("booted from snapshot %s (generation %d, %d articles) in %v",
			*scores, srv.Version(), store.NumArticles(), time.Since(start).Round(time.Millisecond))
	} else {
		log.Printf("ranking %d articles...", store.NumArticles())
		if srv, err = serve.NewWithConfig(store, cfg); err != nil {
			log.Fatal(err)
		}
		log.Printf("ranked in %v", time.Since(start).Round(time.Millisecond))
	}
	if *spool != "" {
		log.Printf("watching spool %s every %v", *spool, *refresh)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("signal received, draining...")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	log.Print("stopped")
}
