// Command sarserve exposes a ranked corpus over HTTP: the production
// shape of query-independent ranking, where scores are computed
// offline and served as a static signal to a search stack.
//
// Endpoints:
//
//	GET /healthz                 liveness
//	GET /stats                   corpus + ranking metadata
//	GET /top?k=20                top-k articles by importance
//	GET /article?key=p00000001   one article with its score components
//	GET /compare?a=KEY&b=KEY     relative order of two articles, with
//	                             the signal breakdown explaining it
//	GET /authors?k=20            top authors (shrunk-mean aggregation)
//	GET /venues?k=20             top venues likewise
//	GET /related?key=KEY&k=10    articles related to KEY (personalised walk)
//
// Usage:
//
//	sarserve -in corpus.jsonl -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/core"
	"scholarrank/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarserve: ")

	var (
		in      = flag.String("in", "", "corpus file (jsonl or tsv); required")
		format  = flag.String("format", "", "corpus format override")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver worker threads (0 = all CPUs)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		log.Fatal("missing -in")
	}

	store, err := cliutil.LoadCorpus(*in, *format)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ranking %d articles...", store.NumArticles())
	start := time.Now()
	opts := core.DefaultOptions()
	opts.Workers = *workers
	srv, err := serve.New(store, opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ranked in %v; serving on %s", time.Since(start).Round(time.Millisecond), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
