// Command sarserve exposes a ranked corpus over HTTP: the production
// shape of query-independent ranking, where scores are computed
// offline and served as a static signal to a search stack. The
// ranking can be updated while serving: deltas arrive over
// /admin/ingest or through a watched spool directory, are re-solved
// warm-started from the live scores, and swap in atomically.
//
// Endpoints:
//
//	GET  /healthz                 liveness + ranking version/staleness
//	GET  /stats                   corpus + ranking metadata, solver timings
//	GET  /metrics                 Prometheus text exposition (latency
//	                              histograms, swap/ingest counters,
//	                              solver convergence gauges)
//	GET  /top?k=20                top-k articles by importance
//	GET  /query?author=A&venue=V&from=2000&to=2010&k=20&cursor=...
//	                              filtered top-k retrieval (author, venue,
//	                              year window) with cursor pagination and a
//	                              generation-keyed response cache
//	GET  /article?key=p00000001   one article with its score components
//	GET  /compare?a=KEY&b=KEY     relative order of two articles, with
//	                              the signal breakdown explaining it
//	GET  /authors?k=20            top authors (shrunk-mean aggregation)
//	GET  /venues?k=20             top venues likewise
//	GET  /related?key=KEY&k=10    articles related to KEY (personalised walk)
//	POST /admin/ingest            apply a JSONL delta and re-rank
//	POST /admin/reload            drain the spool and force a re-solve
//	GET  /admin/snapshot          download the current ranking snapshot
//	GET  /debug/traces            recent + slowest request traces (JSON)
//	GET  /debug/pprof/            profiling (only with -pprof)
//
// Every response carries an X-Request-ID header (generated when the
// client sends a well-formed one it is echoed; malformed or oversize
// ids are replaced) that also appears in the per-request log lines.
// Requests are traced end to end: an inbound W3C traceparent header
// is adopted and the server's own span is echoed back, responses
// carry a Server-Timing breakdown (queue wait, cache lookup, index
// execution, ...), and with -request-log each request emits one
// canonical wide-event line carrying the same span durations.
// Traces whose root span meets -trace-threshold are retained in the
// slowest-N set at /debug/traces past ring churn.
//
// Usage:
//
//	sarserve -in corpus.jsonl -addr :8080
//	sarserve -in corpus.jsonl -scores ranking.snap        # boot without solving
//	sarserve -corpus corpus.scorp -scores ranking.snap    # zero-copy mmap boot
//	sarserve -corpus corpus.scorp -mmap=false             # force the heap loader
//	sarserve -in corpus.jsonl -spool deltas/ -refresh 30s # live updates
//	sarserve -in corpus.jsonl -scorer ewpr                # non-default scorer
//	sarserve -in corpus.jsonl -pprof -log-format json
//
// The -corpus form serves a columnar SCORP corpus (written by
// sarank -save-corpus or sargen -emit-corpus). By default the file is
// memory-mapped (corpus.OpenMapped): the store's columns alias the
// mapped pages directly, boot costs O(section table) regardless of
// corpus size, and the OS page cache — shared across processes —
// backs corpora larger than RAM. Legacy or unaligned files fall back
// to the section-by-section heap loader automatically; -mmap=false
// forces that path. Combined with -scores the process serves without
// solving either; /stats reports corpus_load_mode, corpus_mmap_bytes
// and corpus_boot_seconds for the boot that did happen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/core"
	"scholarrank/internal/corpus"
	"scholarrank/internal/live"
	"scholarrank/internal/obs"
	"scholarrank/internal/serve"
)

// shutdownGrace bounds how long in-flight requests may run after a
// termination signal before the listener is torn down.
const shutdownGrace = 10 * time.Second

func main() {
	var (
		in          = flag.String("in", "", "corpus file (jsonl, tsv, bin or scorp); required unless -corpus is set")
		scorpPath   = flag.String("corpus", "", "columnar SCORP corpus for zero-parse boot (overrides -in)")
		mmapFlag    = flag.Bool("mmap", true, "serve -corpus via mmap: O(1) boot, page-cache backed (falls back to the heap loader on unaligned or legacy files)")
		format      = flag.String("format", "", "corpus format override (with -in)")
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "solver worker threads (0 = all CPUs)")
		shards      = flag.Int("shards", 1, "solve damped walks over this many edge-balanced shards with boundary-mass exchange (one shared worker pool)")
		scorerName  = flag.String("scorer", "", "registered ranking scorer for every (re-)solve (empty = default pipeline)")
		scores      = flag.String("scores", "", "ranking snapshot to boot from (skips the initial solve)")
		spool       = flag.String("spool", "", "directory watched for JSONL delta files")
		refresh     = flag.Duration("refresh", 30*time.Second, "spool poll interval (needs -spool)")
		debounce    = flag.Duration("debounce", 2*time.Second, "quiet period before a spool batch is ingested")
		maxK        = flag.Int("max-k", 0, "upper bound of the k parameter on top-K endpoints (0 = default 1000)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served read requests; excess queues then sheds with 503 (0 = unlimited)")
		queueWait   = flag.Duration("queue-timeout", 0, "how long an over-limit read request may queue before shedding (0 = default 100ms)")
		cacheSize   = flag.Int("cache-entries", 0, "query response cache size in entries (0 = default 4096, negative disables)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		reqLog      = flag.Bool("request-log", true, "log one canonical wide-event line per request")
		traceThresh = flag.Duration("trace-threshold", 100*time.Millisecond, "root-span duration at which a request trace joins the slowest-N set on /debug/traces (negative retains every trace)")
		version     = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("sarserve"))
		return
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	obs.InitLogging(os.Stderr, level, *logFormat)
	logger := obs.Logger("sarserve")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *in == "" && *scorpPath == "" {
		flag.Usage()
		fatal("missing -in or -corpus")
	}

	loadStart := time.Now()
	var store *corpus.Store
	if *scorpPath != "" {
		open := corpus.ReadSCORPFile
		if *mmapFlag {
			open = corpus.OpenMapped
		}
		if store, err = open(*scorpPath); err != nil {
			fatal("load corpus", "file", *scorpPath, "error", err)
		}
		// The boot handle owns one reference to the mapping; serving
		// generations retain their own, so this release at exit never
		// strands a live request.
		defer store.Close()
	} else if store, err = cliutil.LoadCorpus(*in, *format); err != nil {
		fatal("load corpus", "file", *in, "error", err)
	}
	loadElapsed := time.Since(loadStart)
	logger.Info("corpus loaded",
		"articles", store.NumArticles(), "citations", store.NumCitations(),
		"bytes", store.Bytes(), "zero_parse", *scorpPath != "",
		"load_mode", store.LoadMode(), "mapped_bytes", store.MappedBytes(),
		"elapsed", loadElapsed.Round(time.Microsecond).String())

	opts := core.DefaultOptions()
	opts.Workers = *workers
	if *shards < 1 {
		fatal("bad -shards", "shards", *shards)
	}
	opts.Shards = *shards
	if *scorerName != "" {
		if _, ok := core.ScorerDoc(*scorerName); !ok {
			fatal("unknown -scorer", "scorer", *scorerName, "registered", core.ScorerNames())
		}
	}
	cfg := serve.Config{
		Options:           opts,
		Scorer:            *scorerName,
		SpoolDir:          *spool,
		RefreshInterval:   *refresh,
		Debounce:          *debounce,
		MaxTopK:           *maxK,
		MaxInflight:       *maxInflight,
		QueueTimeout:      *queueWait,
		CacheEntries:      *cacheSize,
		RequestLog:        *reqLog,
		EnablePprof:       *pprofFlag,
		TraceThreshold:    *traceThresh,
		CorpusLoadSeconds: loadElapsed.Seconds(),
	}

	start := time.Now()
	var srv *serve.Server
	if *scores != "" {
		snap, err := live.ReadSnapshotFile(*scores)
		if err != nil {
			fatal("read snapshot", "file", *scores, "error", err)
		}
		if srv, err = serve.NewFromSnapshot(store, snap, cfg); err != nil {
			fatal("boot from snapshot", "file", *scores, "error", err)
		}
		logger.Info("booted from snapshot",
			"file", *scores, "version", srv.Version(),
			"articles", store.NumArticles(),
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	} else {
		logger.Info("ranking corpus", "articles", store.NumArticles(), "scorer", cfg.Scorer)
		if srv, err = serve.NewWithConfig(store, cfg); err != nil {
			fatal("rank corpus", "error", err)
		}
		logger.Info("ranked", "elapsed", time.Since(start).Round(time.Millisecond).String())
	}
	srv.RecordBootSeconds(loadElapsed.Seconds())
	if *spool != "" {
		logger.Info("watching spool", "spool", *spool, "interval", refresh.String())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "metrics", "/metrics", "pprof", *pprofFlag)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("listen", "addr", *addr, "error", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err)
	}
	srv.Close()
	logger.Info("stopped")
}

// parseLevel maps a -log-level value to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("sarserve: unknown -log-level %q (want debug, info, warn or error)", s)
}
