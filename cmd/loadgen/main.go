// Command loadgen drives a sarserve instance with a mixed read
// workload and reports throughput and tail latency. It is the
// benchmark harness behind BENCH_8.json: an open-loop generator
// (arrivals come off a fixed-rate clock, not off completions, so
// queueing delay shows up in the tail instead of silently throttling
// the offered load) with zipf-distributed key popularity, the shape
// real ranking traffic has — a few hot articles, a long cold tail.
//
// Two modes:
//
//	loadgen -url http://host:8080 -qps 2000 -duration 30s
//	    drive an already-running server
//	loadgen -smoke -articles 100000 -qps 2000 -duration 10s
//	    synthesise a corpus (internal/gen), rank it, serve it
//	    in-process and drive that — the CI mode, no network
//
// The workload mixes /top, /query (author/venue/year filters with
// cursor pagination), /article and /related. After the timed run a
// cache probe measures the /query response cache: distinct
// never-seen-before queries (cold, index path) versus one repeated
// query (hot, cache path), reporting the speedup between the two.
//
// Every response's Server-Timing header (emitted by sarserve's
// tracing middleware) is parsed and aggregated, so the report also
// carries the server-side time split — queue wait, cache lookup,
// index execution, view building — not just client-observed wall
// time.
//
// The report is JSON (see the Report type), written to -o.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scholarrank/internal/core"
	"scholarrank/internal/gen"
	"scholarrank/internal/obs"
	"scholarrank/internal/serve"
)

func main() {
	var o options
	flag.StringVar(&o.URL, "url", "", "base URL of a running sarserve (required unless -smoke)")
	flag.BoolVar(&o.Smoke, "smoke", false, "generate a corpus and serve it in-process instead of targeting -url")
	flag.IntVar(&o.Articles, "articles", 100000, "synthetic corpus size (with -smoke)")
	flag.DurationVar(&o.Duration, "duration", 10*time.Second, "timed-run length")
	flag.Float64Var(&o.QPS, "qps", 2000, "open-loop arrival rate, requests per second")
	flag.IntVar(&o.Workers, "workers", 64, "max in-flight client requests")
	flag.Float64Var(&o.Zipf, "zipf", 1.1, "key-popularity skew (larger = hotter hot keys)")
	flag.IntVar(&o.Probes, "probes", 200, "distinct queries in the cache cold/hot probe")
	flag.Int64Var(&o.Seed, "seed", 1, "workload random seed")
	flag.StringVar(&o.Out, "o", "BENCH_8.json", "report output path")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionString("loadgen"))
		return
	}

	rep, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(o.Out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: %.0f achieved qps, %d requests, report written to %s\n",
		rep.AchievedQPS, rep.Requests, o.Out)
}

type options struct {
	URL      string
	Smoke    bool
	Articles int
	Duration time.Duration
	QPS      float64
	Workers  int
	Zipf     float64
	Probes   int
	Seed     int64
	Out      string
}

// Report is the BENCH_8.json shape.
type Report struct {
	GeneratedAt string  `json:"generated_at"`
	Mode        string  `json:"mode"` // "smoke" or "remote"
	Articles    int     `json:"articles"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationSec float64 `json:"duration_seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed_503"`
	Dropped     int64   `json:"client_dropped"`

	Routes map[string]RouteStats `json:"routes"`
	Cache  CacheProbe            `json:"cache"`

	// ServerTiming aggregates the server-side time split reported in
	// each response's Server-Timing header (one entry per span name:
	// queue, cache, index, corpus, walk, total), so the report shows
	// where server time went, not just client-observed wall time.
	ServerTiming map[string]TimingStat `json:"server_timing"`
}

// TimingStat aggregates one Server-Timing entry across the run.
type TimingStat struct {
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
}

// RouteStats summarises the latency distribution of one route.
type RouteStats struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// CacheProbe compares the /query index path (cold, distinct queries)
// against the response-cache path (hot, one repeated query).
type CacheProbe struct {
	ColdP50ms float64 `json:"cold_p50_ms"`
	HotP50ms  float64 `json:"hot_p50_ms"`
	Speedup   float64 `json:"speedup"`
}

// run executes the whole benchmark and assembles the report. Split
// from main so the smoke path is testable in-process.
func run(o options) (*Report, error) {
	base := o.URL
	mode := "remote"
	articles := 0
	if o.Smoke {
		mode = "smoke"
		articles = o.Articles
		cfg := gen.NewDefaultConfig(o.Articles)
		cfg.Seed = o.Seed
		c, err := gen.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generate corpus: %w", err)
		}
		// The smoke server runs with admission control on, sized to the
		// machine: under open-loop overload the excess sheds fast with
		// 503 (counted separately below) instead of queueing without
		// bound, so the percentiles describe admitted requests.
		srv, err := serve.NewWithConfig(c.Store, serve.Config{
			Options:     core.DefaultOptions(),
			MaxInflight: 2 * runtime.GOMAXPROCS(0),
		})
		if err != nil {
			return nil, fmt.Errorf("rank corpus: %w", err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
	} else if base == "" {
		return nil, fmt.Errorf("need -url or -smoke")
	}

	client := &http.Client{Timeout: 30 * time.Second}
	w, err := harvest(client, base, o.Seed, o.Zipf)
	if err != nil {
		return nil, err
	}
	if articles == 0 {
		articles = len(w.articleKeys)
	}

	rep := drive(client, base, w, o)
	rep.Mode = mode
	rep.Articles = articles
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	probe, err := probeCache(client, base, w, o.Probes)
	if err != nil {
		return nil, err
	}
	rep.Cache = probe
	return rep, nil
}

// workload holds the harvested key universe the generator draws from.
type workload struct {
	rng         *rand.Rand
	zipf        float64
	articleKeys []string
	authorKeys  []string
	venueKeys   []string
	minYear     int
	maxYear     int
}

// harvest learns the key universe from the server itself (top
// articles, authors and venues), so external and smoke runs share one
// code path and the generator never requests keys that 404.
func harvest(client *http.Client, base string, seed int64, zipf float64) (*workload, error) {
	w := &workload{rng: rand.New(rand.NewSource(seed)), zipf: zipf,
		minYear: 1 << 30, maxYear: -(1 << 30)}

	var tops []struct {
		Key  string `json:"key"`
		Year int    `json:"year"`
	}
	if err := getJSON(client, base+"/top?k=1000", &tops); err != nil {
		return nil, fmt.Errorf("harvest /top: %w", err)
	}
	for _, a := range tops {
		w.articleKeys = append(w.articleKeys, a.Key)
		if a.Year < w.minYear {
			w.minYear = a.Year
		}
		if a.Year > w.maxYear {
			w.maxYear = a.Year
		}
	}
	if len(w.articleKeys) == 0 {
		return nil, fmt.Errorf("harvest: server has no articles")
	}

	var entities []struct {
		Key string `json:"key"`
	}
	if err := getJSON(client, base+"/authors?k=500", &entities); err != nil {
		return nil, fmt.Errorf("harvest /authors: %w", err)
	}
	for _, e := range entities {
		w.authorKeys = append(w.authorKeys, e.Key)
	}
	entities = entities[:0]
	if err := getJSON(client, base+"/venues?k=200", &entities); err != nil {
		return nil, fmt.Errorf("harvest /venues: %w", err)
	}
	for _, e := range entities {
		w.venueKeys = append(w.venueKeys, e.Key)
	}
	return w, nil
}

// pick draws an index in [0, n) with zipf-ish popularity: rank 0 is
// the hottest key. Inverse-CDF over 1/(i+1)^s would need a table per
// n; the rejection-free approximation below (power of a uniform)
// matches the skew shape well enough for cache realism.
func (w *workload) pick(n int) int {
	if n <= 1 {
		return 0
	}
	u := w.rng.Float64()
	i := int(float64(n) * math.Pow(u, w.zipf+1))
	if i >= n {
		i = n - 1
	}
	return i
}

// next produces the next request path: a fixed route mix with
// zipf-popular keys.
func (w *workload) next() (route, path string) {
	r := w.rng.Float64()
	switch {
	case r < 0.20:
		return "/top", fmt.Sprintf("/top?k=%d", 10+w.rng.Intn(90))
	case r < 0.55:
		return "/query", w.queryPath()
	case r < 0.85:
		key := w.articleKeys[w.pick(len(w.articleKeys))]
		return "/article", "/article?key=" + key
	default:
		// Related queries run a personalised walk per cold key — the
		// dearest read the server has. Real traffic concentrates them
		// on popular article pages, so draw from a small hot set; the
		// server's response cache absorbs the repeats.
		hot := len(w.articleKeys)
		if hot > 50 {
			hot = 50
		}
		key := w.articleKeys[w.pick(hot)]
		return "/related", fmt.Sprintf("/related?key=%s&k=10", key)
	}
}

func (w *workload) queryPath() string {
	p := fmt.Sprintf("/query?k=%d", 5+w.rng.Intn(45))
	switch w.rng.Intn(3) {
	case 0:
		if len(w.authorKeys) > 0 {
			p += "&author=" + w.authorKeys[w.pick(len(w.authorKeys))]
		}
	case 1:
		if len(w.venueKeys) > 0 {
			p += "&venue=" + w.venueKeys[w.pick(len(w.venueKeys))]
		}
	default:
		if len(w.venueKeys) > 0 && w.rng.Intn(2) == 0 {
			p += "&venue=" + w.venueKeys[w.pick(len(w.venueKeys))]
		}
	}
	if w.maxYear > w.minYear && w.rng.Intn(2) == 0 {
		span := w.maxYear - w.minYear
		from := w.minYear + w.rng.Intn(span)
		to := from + 1 + w.rng.Intn(span)
		p += fmt.Sprintf("&from=%d&to=%d", from, to)
	}
	return p
}

// sample is one completed request.
type sample struct {
	route   string
	elapsed time.Duration
	status  int
	err     bool
	timings map[string]float64 // parsed Server-Timing, ms by span name
}

// parseServerTiming extracts the per-span durations from a
// Server-Timing header value ("queue;dur=0.05, index;dur=1.80, ...").
// Entries without a dur parameter are skipped; nil when nothing
// parses.
func parseServerTiming(h string) map[string]float64 {
	var out map[string]float64
	for _, entry := range strings.Split(h, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), ";")
		if !ok {
			continue
		}
		for _, param := range strings.Split(rest, ";") {
			k, v, ok := strings.Cut(strings.TrimSpace(param), "=")
			if !ok || k != "dur" {
				continue
			}
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			if out == nil {
				out = make(map[string]float64, 8)
			}
			out[name] += ms
		}
	}
	return out
}

// drive runs the open-loop timed phase: a fixed-rate arrival clock
// feeds a bounded worker pool; arrivals that find the pool saturated
// are counted as client-side drops rather than stalling the clock.
func drive(client *http.Client, base string, w *workload, o options) *Report {
	type job struct{ route, path string }
	jobs := make(chan job, o.Workers)
	results := make(chan sample, 4*o.Workers)
	var wg sync.WaitGroup
	for i := 0; i < o.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				start := time.Now()
				resp, err := client.Get(base + j.path)
				s := sample{route: j.route, elapsed: time.Since(start)}
				if err != nil {
					s.err = true
				} else {
					s.status = resp.StatusCode
					s.timings = parseServerTiming(resp.Header.Get("Server-Timing"))
					resp.Body.Close()
				}
				results <- s
			}
		}()
	}

	var dropped atomic.Int64
	go func() {
		interval := time.Duration(float64(time.Second) / o.QPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		deadline := time.Now().Add(o.Duration)
		for now := range ticker.C {
			if now.After(deadline) {
				break
			}
			route, path := w.next()
			select {
			case jobs <- job{route, path}:
			default:
				dropped.Add(1)
			}
		}
		close(jobs)
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	byRoute := map[string][]time.Duration{}
	timing := map[string]*TimingStat{}
	rep := &Report{TargetQPS: o.QPS, Routes: map[string]RouteStats{}}
	// Percentiles describe served responses only; shed (503) and
	// errored requests are counted but excluded, so admission control
	// firing cannot flatter the latency numbers. The server-side split
	// is aggregated over the same served responses.
	record := func(s sample) {
		rep.Requests++
		switch {
		case s.err:
			rep.Errors++
		case s.status == http.StatusServiceUnavailable:
			rep.Shed++
		case s.status >= 500:
			rep.Errors++
		case s.status == http.StatusOK:
			byRoute[s.route] = append(byRoute[s.route], s.elapsed)
			for name, ms := range s.timings {
				st := timing[name]
				if st == nil {
					st = &TimingStat{}
					timing[name] = st
				}
				st.Count++
				st.TotalMs += ms
			}
		}
	}
	start := time.Now()
collect:
	for {
		select {
		case s := <-results:
			record(s)
		case <-done:
			// Drain anything the workers pushed before exiting.
			for {
				select {
				case s := <-results:
					record(s)
				default:
					break collect
				}
			}
		}
	}
	elapsed := time.Since(start)
	rep.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		rep.AchievedQPS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.Dropped = dropped.Load()
	for route, ds := range byRoute {
		rep.Routes[route] = RouteStats{
			Count: int64(len(ds)),
			P50ms: percentileMS(ds, 50),
			P95ms: percentileMS(ds, 95),
			P99ms: percentileMS(ds, 99),
		}
	}
	rep.ServerTiming = make(map[string]TimingStat, len(timing))
	for name, st := range timing {
		if st.Count > 0 {
			st.MeanMs = st.TotalMs / float64(st.Count)
		}
		rep.ServerTiming[name] = *st
	}
	return rep
}

// probeCache measures the cache's effect directly: n distinct /query
// URLs that cannot have been cached (cold: the index computes each)
// versus the same URL n times after one warming request (hot: the
// cache serves each). Sequential on one connection so the two sides
// measure the server path, not client-side contention.
func probeCache(client *http.Client, base string, w *workload, n int) (CacheProbe, error) {
	if n <= 0 {
		n = 50
	}
	span := w.maxYear - w.minYear
	if span < 2 {
		span = 2
	}
	cold := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		// Distinct (from, to, k) triples no generator phase produced:
		// loadgen's timed phase uses k in [5,50), the probe uses
		// k in [800,1000) so these keys are guaranteed cache misses.
		// Large pages make the cold side representative — the index
		// walk plus building and serialising a full page of views,
		// the work a cache hit skips.
		from := w.minYear + i%span
		to := from + 1 + (i/span)%span
		url := fmt.Sprintf("%s/query?from=%d&to=%d&k=%d", base, from, to, 800+i%200)
		d, err := timeGet(client, url)
		if err != nil {
			return CacheProbe{}, fmt.Errorf("cold probe: %w", err)
		}
		cold = append(cold, d)
	}
	hotURL := fmt.Sprintf("%s/query?from=%d&to=%d&k=1000", base, w.minYear, w.maxYear)
	if _, err := timeGet(client, hotURL); err != nil { // warm the entry
		return CacheProbe{}, fmt.Errorf("warm probe: %w", err)
	}
	hot := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		d, err := timeGet(client, hotURL)
		if err != nil {
			return CacheProbe{}, fmt.Errorf("hot probe: %w", err)
		}
		hot = append(hot, d)
	}
	p := CacheProbe{ColdP50ms: percentileMS(cold, 50), HotP50ms: percentileMS(hot, 50)}
	if p.HotP50ms > 0 {
		p.Speedup = p.ColdP50ms / p.HotP50ms
	}
	return p, nil
}

func timeGet(client *http.Client, url string) (time.Duration, error) {
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return time.Since(start), nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// percentileMS returns the p-th percentile of ds in milliseconds
// (nearest-rank on a sorted copy).
func percentileMS(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (p*len(sorted) + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
