package main

import (
	"testing"
	"time"
)

// TestSmokeRun exercises the whole harness end to end at toy scale:
// generate, rank, serve in-process, drive the mixed workload, probe
// the cache, and sanity-check the report.
func TestSmokeRun(t *testing.T) {
	rep, err := run(options{
		Smoke:    true,
		Articles: 1500,
		Duration: 300 * time.Millisecond,
		QPS:      400,
		Workers:  8,
		Zipf:     1.1,
		Probes:   20,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "smoke" || rep.Articles != 1500 {
		t.Errorf("mode=%q articles=%d", rep.Mode, rep.Articles)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors", rep.Errors)
	}
	if rep.AchievedQPS <= 0 {
		t.Errorf("achieved qps = %f", rep.AchievedQPS)
	}
	for _, route := range []string{"/top", "/query", "/article", "/related"} {
		rs, ok := rep.Routes[route]
		if !ok || rs.Count == 0 {
			t.Errorf("route %s has no samples", route)
			continue
		}
		if rs.P50ms <= 0 || rs.P99ms < rs.P50ms {
			t.Errorf("route %s percentiles p50=%f p99=%f", route, rs.P50ms, rs.P99ms)
		}
	}
	if rep.Cache.ColdP50ms <= 0 || rep.Cache.HotP50ms <= 0 {
		t.Errorf("cache probe missing: %+v", rep.Cache)
	}
	if rep.Cache.Speedup <= 0 {
		t.Errorf("cache speedup = %f", rep.Cache.Speedup)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond,
	}
	if got := percentileMS(ds, 50); got != 2 {
		t.Errorf("p50 = %f", got)
	}
	if got := percentileMS(ds, 99); got != 4 {
		t.Errorf("p99 = %f", got)
	}
	if got := percentileMS(nil, 50); got != 0 {
		t.Errorf("empty p50 = %f", got)
	}
}
