package main

import (
	"testing"
	"time"
)

// TestSmokeRun exercises the whole harness end to end at toy scale:
// generate, rank, serve in-process, drive the mixed workload, probe
// the cache, and sanity-check the report.
func TestSmokeRun(t *testing.T) {
	rep, err := run(options{
		Smoke:    true,
		Articles: 1500,
		Duration: 300 * time.Millisecond,
		QPS:      400,
		Workers:  8,
		Zipf:     1.1,
		Probes:   20,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "smoke" || rep.Articles != 1500 {
		t.Errorf("mode=%q articles=%d", rep.Mode, rep.Articles)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors", rep.Errors)
	}
	if rep.AchievedQPS <= 0 {
		t.Errorf("achieved qps = %f", rep.AchievedQPS)
	}
	for _, route := range []string{"/top", "/query", "/article", "/related"} {
		rs, ok := rep.Routes[route]
		if !ok || rs.Count == 0 {
			t.Errorf("route %s has no samples", route)
			continue
		}
		if rs.P50ms <= 0 || rs.P99ms < rs.P50ms {
			t.Errorf("route %s percentiles p50=%f p99=%f", route, rs.P50ms, rs.P99ms)
		}
	}
	if rep.Cache.ColdP50ms <= 0 || rep.Cache.HotP50ms <= 0 {
		t.Errorf("cache probe missing: %+v", rep.Cache)
	}
	if rep.Cache.Speedup <= 0 {
		t.Errorf("cache speedup = %f", rep.Cache.Speedup)
	}
	// The server-side time split harvested from Server-Timing headers:
	// every admitted request records a queue wait and a total; /query
	// and /related traffic adds cache lookups.
	for _, name := range []string{"queue", "cache", "total"} {
		st, ok := rep.ServerTiming[name]
		if !ok || st.Count == 0 {
			t.Errorf("server timing missing %q: %+v", name, rep.ServerTiming)
			continue
		}
		if st.MeanMs < 0 || st.TotalMs < st.MeanMs {
			t.Errorf("server timing %q inconsistent: %+v", name, st)
		}
	}
	if st := rep.ServerTiming["total"]; st.MeanMs <= 0 {
		t.Errorf("total server-side mean = %f, want > 0", st.MeanMs)
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming("queue;dur=0.05, cache;dur=0.11, index;dur=1.80, total;dur=2.31")
	want := map[string]float64{"queue": 0.05, "cache": 0.11, "index": 1.8, "total": 2.31}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if parseServerTiming("") != nil {
		t.Error("empty header parsed to entries")
	}
	if parseServerTiming("garbage") != nil {
		t.Error("malformed header parsed to entries")
	}
	// Entries with extra params and ones without dur.
	got = parseServerTiming(`db;desc="db";dur=3.5, app;desc="x"`)
	if got["db"] != 3.5 || len(got) != 1 {
		t.Errorf("param handling: %v", got)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond,
	}
	if got := percentileMS(ds, 50); got != 2 {
		t.Errorf("p50 = %f", got)
	}
	if got := percentileMS(ds, 99); got != 4 {
		t.Errorf("p99 = %f", got)
	}
	if got := percentileMS(nil, 50); got != 0 {
		t.Errorf("empty p50 = %f", got)
	}
}
