// Command sargen generates a synthetic scholarly corpus and writes it
// in JSONL, TSV, binary or columnar SCORP form, optionally together
// with the oracle quality file the evaluation harness consumes.
//
// Usage:
//
//	sargen -n 100000 -seed 7 -out corpus.jsonl [-quality quality.tsv]
//	sargen -n 100000 -seed 7 -out corpus.jsonl -emit-corpus corpus.scorp
//	sargen -n 100000 -seed 7 -emit-corpus corpus.scorm -shards 4
//
// -emit-corpus additionally freezes the generated corpus into the
// SCORP columnar format that sarserve -corpus boots from with zero
// parsing. With -shards N (N > 1) it instead writes a multi-shard
// layout: a SCORM manifest at the given path plus N per-shard SCORP
// files beside it, partitioned edge-balanced over the solver order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/corpus"
	"scholarrank/internal/gen"
	"scholarrank/internal/graph"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/obs"
	"scholarrank/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sargen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against the given arguments and streams; it
// is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sargen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n         = fs.Int("n", 20000, "number of articles")
		seed      = fs.Int64("seed", 1, "generator seed")
		out       = fs.String("out", "", "output path (default stdout)")
		format    = fs.String("format", "", "output format: jsonl, tsv or bin (default: by extension, jsonl on stdout)")
		qualOut   = fs.String("quality", "", "also write per-article latent quality TSV to this path")
		scorpOut  = fs.String("emit-corpus", "", "also write the corpus as a columnar SCORP file to this path")
		shards    = fs.Int("shards", 1, "with -emit-corpus: split the corpus into this many edge-balanced shards (SCORM manifest + per-shard SCORP files)")
		meanRefs  = fs.Float64("refs", 12, "mean references per article")
		startYear = fs.Int("start-year", 1970, "first publication year")
		endYear   = fs.Int("end-year", 2017, "last publication year")
		pref      = fs.Float64("pref-attach", 1.0, "preferential attachment exponent")
		rho       = fs.Float64("recency", 0.25, "citing recency decay per year")
		stats     = fs.Bool("stats", false, "print corpus statistics to stderr")
		version   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.VersionString("sargen"))
		return nil
	}

	cfg := gen.NewDefaultConfig(*n)
	cfg.Seed = *seed
	cfg.MeanRefs = *meanRefs
	cfg.StartYear, cfg.EndYear = *startYear, *endYear
	cfg.PrefAttach = *pref
	cfg.RecencyRho = *rho

	c, err := gen.Generate(cfg)
	if err != nil {
		return err
	}

	if *out != "" {
		// SaveCorpus handles format detection and .gz compression.
		if err := cliutil.SaveCorpus(*out, *format, c.Store); err != nil {
			return err
		}
	} else {
		f := cliutil.FormatJSONL
		if *format != "" {
			f, err = cliutil.DetectFormat("", *format)
			if err != nil {
				return err
			}
		}
		w := bufio.NewWriter(stdout)
		if err := cliutil.WriteCorpus(w, c.Store, f); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if *shards < 1 {
		return fmt.Errorf("-shards %d: want >= 1", *shards)
	}
	if *shards > 1 && *scorpOut == "" {
		return fmt.Errorf("-shards %d requires -emit-corpus", *shards)
	}
	if *scorpOut != "" {
		if *shards > 1 {
			// Partition over the solver-ordered citation graph — the
			// order shard files store rows in — so the on-disk layout
			// matches what the sharded solver computes at runtime.
			plan, err := shard.Partition(hetnet.Build(c.Store).SolverView().Citations, *shards)
			if err != nil {
				return err
			}
			m, err := corpus.WriteShardedSCORP(*scorpOut, c.Store, plan.Bounds)
			if err != nil {
				return err
			}
			if *stats {
				fmt.Fprintf(stderr, "sharded corpus: %d shards, edges %v, cut %d\n",
					m.NumShards(), plan.EdgeCounts(), plan.Cut)
			}
		} else if err := corpus.WriteSCORPFile(*scorpOut, c.Store); err != nil {
			return err
		}
	}

	if *qualOut != "" {
		if err := writeQuality(*qualOut, c); err != nil {
			return err
		}
	}

	if *stats {
		st := graph.ComputeStats(c.Store.CitationGraph())
		fmt.Fprintf(stderr, "%s authors=%d venues=%d\n", st, c.Store.NumAuthors(), c.Store.NumVenues())
	}
	return nil
}

// writeQuality exports the oracle quality vector as key<TAB>value.
func writeQuality(path string, c *gen.Corpus) error {
	qf, err := os.Create(path)
	if err != nil {
		return err
	}
	qw := bufio.NewWriter(qf)
	c.Store.VisitArticles(func(id corpus.ArticleID, a *corpus.Article) {
		fmt.Fprintf(qw, "%s\t%g\n", a.Key, c.Quality[id])
	})
	if err := qw.Flush(); err != nil {
		qf.Close()
		return err
	}
	return qf.Close()
}
