package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/corpus"
)

func TestRunStdoutJSONL(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "200", "-seed", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s, err := cliutil.ReadCorpus(&out, cliutil.FormatJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumArticles() != 200 {
		t.Errorf("articles = %d", s.NumArticles())
	}
	if s.NumCitations() == 0 {
		t.Error("no citations")
	}
}

func TestRunFileFormats(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{"jsonl", "tsv", "bin", "jsonl.gz", "bin.gz"} {
		path := filepath.Join(dir, "c."+ext)
		var out, errBuf bytes.Buffer
		if err := run([]string{"-n", "150", "-out", path}, &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		s, err := cliutil.LoadCorpus(path, "")
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if s.NumArticles() != 150 {
			t.Errorf("%s: articles = %d", ext, s.NumArticles())
		}
	}
}

func TestRunQualityExport(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "q.tsv")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "120", "-quality", qpath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(qpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		parts := strings.Split(sc.Text(), "\t")
		if len(parts) != 2 {
			t.Fatalf("bad quality row: %q", sc.Text())
		}
		lines++
	}
	if lines != 120 {
		t.Errorf("quality rows = %d", lines)
	}
}

func TestRunStats(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "150", "-stats"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "nodes=150") {
		t.Errorf("stats output = %q", errBuf.String())
	}
}

func TestRunShardedCorpus(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.scorm")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "300", "-seed", "5", "-emit-corpus", path, "-shards", "3", "-stats"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "sharded corpus: 3 shards") {
		t.Errorf("stats output = %q", errBuf.String())
	}
	sc, err := corpus.OpenShardedSCORP(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.NumShards() != 3 {
		t.Fatalf("shards = %d", sc.NumShards())
	}
	if err := sc.VerifyFiles(); err != nil {
		t.Fatal(err)
	}
	s, err := sc.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumArticles() != 300 {
		t.Errorf("assembled articles = %d", s.NumArticles())
	}
	// The manifest also loads through the shared corpus loader.
	via, err := cliutil.LoadCorpus(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if via.NumArticles() != 300 || via.NumCitations() != s.NumCitations() {
		t.Errorf("LoadCorpus scorm: %d/%d", via.NumArticles(), via.NumCitations())
	}
}

func TestRunShardsFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "100", "-shards", "2"}, &out, &errBuf); err == nil {
		t.Error("-shards without -emit-corpus accepted")
	}
	if err := run([]string{"-n", "100", "-emit-corpus", filepath.Join(t.TempDir(), "c.scorm"), "-shards", "0"}, &out, &errBuf); err == nil {
		t.Error("-shards 0 accepted")
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-n", "0"}, &out, &errBuf); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-format", "xml"}, &out, &errBuf); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errBuf); err == nil {
		t.Error("unknown flag accepted")
	}
}
