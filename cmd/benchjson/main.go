// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON artifact, so CI can archive benchmark numbers
// in a form that diffing and plotting tools consume directly.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Input is read from stdin (or from files given as arguments, in
// order) and may mix benchmark lines with arbitrary other output —
// experiment tables, PASS/ok trailers — which is ignored. Each
// benchmark result becomes one record with the parallelism suffix
// split off the name:
//
//	{"name": "BenchmarkDampedWalkPowerLaw100k/reordered", "procs": 8,
//	 "iterations": 38, "ns_per_op": 40211532, "b_per_op": 1600128,
//	 "allocs_per_op": 6}
//
// ns_per_op is always present; the -benchmem and SetBytes fields
// appear only when the input carried them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"scholarrank/internal/obs"
)

// benchResult is one parsed benchmark line. Pointer fields distinguish
// "not reported" from zero in the JSON output.
type benchResult struct {
	Name        string   `json:"name"`
	Procs       int      `json:"procs,omitempty"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
}

// report is the artifact envelope: the host context lines Go prints
// before the first benchmark, then every result in input order.
type report struct {
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against the given arguments and streams; it
// is the testable core of the command.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output path (default stdout)")
	version := fs.Bool("version", false, "print build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.VersionString("benchjson"))
		return nil
	}

	var rep report
	if paths := fs.Args(); len(paths) > 0 {
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			err = parseBench(f, &rep)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
		}
	} else if err := parseBench(stdin, &rep); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// parseBench scans go-test benchmark output, appending every result
// line to rep and capturing the goos/goarch/cpu context lines.
// Non-benchmark lines are skipped, so mixed output (experiment tables,
// package trailers) parses cleanly.
func parseBench(r io.Reader, rep *report) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return sc.Err()
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName/sub-8  38  40211532 ns/op  1600128 B/op  6 allocs/op
//
// returning ok=false for lines that merely start with "Benchmark"
// (such as a benchmark's own log output) but do not fit the shape.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	res := benchResult{Name: fields[0]}
	// The trailing -N is GOMAXPROCS, split off so names are stable
	// across machines. Subtests keep their full slash path.
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res.Iterations = iters
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp, seen = v, true
		case "B/op":
			res.BPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		case "MB/s":
			res.MBPerS = &v
		}
	}
	return res, seen
}
