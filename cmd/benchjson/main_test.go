package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: scholarrank/internal/sparse
cpu: AMD EPYC 7B13
BenchmarkDampedWalkPowerLaw100k/original-8         	      18	  63297518 ns/op	 1600132 B/op	       6 allocs/op
BenchmarkDampedWalkPowerLaw100k/reordered-8        	      28	  40211532 ns/op	 1600128 B/op	       6 allocs/op
BenchmarkDampedWalkPowerLaw100k/reordered-aitken-8 	      40	  28844120 ns/op	 4000512 B/op	      12 allocs/op
BenchmarkL1Diff-8                                  	   21514	     55400 ns/op	28880.87 MB/s	       0 B/op	       0 allocs/op
| some experiment table row | 42 |
Benchmark log line that is not a result
PASS
ok  	scholarrank/internal/sparse	12.3s
`

func TestParseBench(t *testing.T) {
	var rep report
	if err := parseBench(strings.NewReader(sampleOutput), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("context = %q %q %q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	r := rep.Benchmarks[1]
	if r.Name != "BenchmarkDampedWalkPowerLaw100k/reordered" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 28 || r.NsPerOp != 40211532 {
		t.Errorf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BPerOp == nil || *r.BPerOp != 1600128 || r.AllocsPerOp == nil || *r.AllocsPerOp != 6 {
		t.Errorf("benchmem fields = %v %v", r.BPerOp, r.AllocsPerOp)
	}
	if r.MBPerS != nil {
		t.Errorf("unexpected MB/s on walk benchmark: %v", *r.MBPerS)
	}
	// The aitken subtest name keeps its own dash; only the trailing
	// GOMAXPROCS suffix is split off.
	if got := rep.Benchmarks[2].Name; got != "BenchmarkDampedWalkPowerLaw100k/reordered-aitken" {
		t.Errorf("aitken name = %q", got)
	}
	if l1 := rep.Benchmarks[3]; l1.MBPerS == nil || *l1.MBPerS != 28880.87 {
		t.Errorf("MB/s = %v", l1.MBPerS)
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	in := filepath.Join(t.TempDir(), "bench.txt")
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, in}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Errorf("artifact has %d results", len(rep.Benchmarks))
	}
	// Unreported fields must be absent, not zero — the artifact is
	// diffed by tools that treat 0 B/op as a measurement.
	if strings.Contains(string(raw), `"mb_per_s": 0`) {
		t.Error("zero-valued mb_per_s serialised")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); err == nil {
		t.Error("empty input accepted")
	}
}
