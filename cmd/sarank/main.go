// Command sarank ranks a scholarly corpus with any of the implemented
// algorithms and prints the top articles (and optionally the top
// authors and venues derived from the article scores).
//
// Usage:
//
//	sarank -in corpus.jsonl -algo QISA-Rank -k 20
//	sarank -in corpus.tsv -algo all -k 5
//	sarank -in corpus.bin -entities
//	sarank -in corpus.jsonl -save-scores ranking.snap
//	sarank -in corpus.tsv -save-corpus corpus.scorp -k 0
//	sarank -in corpus.jsonl -scorer ewpr -scorer-opt damping=0.9 -k 20
//
// With -save-scores the full QISA ranking (all signal components) is
// persisted as a checksummed snapshot that sarserve -scores boots
// from without re-solving. With -save-corpus the loaded corpus is
// re-emitted as a columnar SCORP file, the converter path from any
// text format to the zero-parse boot format sarserve -corpus reads.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/core"
	"scholarrank/internal/corpus"
	"scholarrank/internal/experiments"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/live"
	"scholarrank/internal/obs"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sarank: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against the given arguments and streams; it
// is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sarank", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "corpus file (jsonl, tsv or bin); required")
		format   = fs.String("format", "", "corpus format override")
		algo     = fs.String("algo", "QISA-Rank", "algorithm, or 'all' ("+cliutil.MethodNames()+")")
		scorer   = fs.String("scorer", "", "registered core scorer ("+strings.Join(core.ScorerNames(), ", ")+"); overrides -algo and works with -save-scores and -trace")
		k        = fs.Int("k", 20, "number of top articles to print")
		workers  = fs.Int("workers", 0, "mat-vec workers (0 = NumCPU)")
		entities = fs.Bool("entities", false, "also print top authors and venues (derived from article scores)")
		save     = fs.String("save-scores", "", "write the QISA ranking as a snapshot file for sarserve -scores")
		saveCorp = fs.String("save-corpus", "", "write the loaded corpus as a columnar SCORP file for sarserve -corpus")
		trace    = fs.Bool("trace", false, "print per-iteration solver residuals for the prestige and hetero phases (QISA-Rank only)")
		shards   = fs.Int("shards", 1, "solve the damped walks over this many edge-balanced shards with boundary-mass exchange (QISA-Rank/scorer path only)")
		shardJac = fs.Bool("shard-jacobi", false, "with -shards: exchange boundary mass only at sweep barriers (jacobi schedule) instead of in-sweep")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	var sopts core.ScorerOptions
	fs.Func("scorer-opt", "scorer option as key=value (repeatable; see -scorer)", func(kv string) error {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("want key=value, got %q", kv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("option %s: %w", key, err)
		}
		if sopts == nil {
			sopts = core.ScorerOptions{}
		}
		sopts[key] = f
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.VersionString("sarank"))
		return nil
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	if *scorer == "" {
		if *save != "" && !strings.EqualFold(*algo, "QISA-Rank") {
			return fmt.Errorf("-save-scores persists the full signal breakdown and needs -algo QISA-Rank or -scorer, not %q", *algo)
		}
		if *trace && !strings.EqualFold(*algo, "QISA-Rank") {
			return fmt.Errorf("-trace hooks the core solver loops and needs -algo QISA-Rank or -scorer, not %q", *algo)
		}
		if *shards > 1 && !strings.EqualFold(*algo, "QISA-Rank") {
			return fmt.Errorf("-shards routes through the core solver and needs -algo QISA-Rank or -scorer, not %q", *algo)
		}
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: want >= 1", *shards)
	}
	if *shardJac && *shards <= 1 {
		return fmt.Errorf("-shard-jacobi needs -shards > 1")
	}
	if sopts != nil && *scorer == "" {
		return fmt.Errorf("-scorer-opt needs -scorer")
	}

	store, err := cliutil.LoadCorpus(*in, *format)
	if err != nil {
		return err
	}
	if *saveCorp != "" {
		if err := corpus.WriteSCORPFile(*saveCorp, store); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote columnar corpus %s (%d articles, %d bytes resident)\n",
			*saveCorp, store.NumArticles(), store.Bytes())
		// -k 0 with no other output turns the run into a pure format
		// conversion: skip the solve entirely.
		if *k == 0 && *save == "" && !*entities && !*trace {
			return nil
		}
	}
	net := hetnet.Build(store)
	fmt.Fprintf(stderr, "loaded %d articles, %d citations, %d authors, %d venues\n",
		store.NumArticles(), store.NumCitations(), store.NumAuthors(), store.NumVenues())

	if *scorer != "" || *save != "" || *trace || *shards > 1 {
		name := *scorer
		if name == "" {
			name = core.DefaultScorer
		}
		return runScorer(stdout, stderr, store, net, name, sopts, *workers, *k, *entities, *save, *trace, *shards, *shardJac)
	}

	var methods []experiments.Method
	if strings.EqualFold(*algo, "all") {
		methods = experiments.Methods()
	} else {
		m, err := cliutil.MethodByName(*algo)
		if err != nil {
			return err
		}
		methods = []experiments.Method{m}
	}

	for _, m := range methods {
		res, err := m.Run(net, *workers)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
		fmt.Fprintf(stdout, "\n# %s", m.Name)
		if res.Stats.Iterations > 0 {
			fmt.Fprintf(stdout, " (%d iterations, residual %.2e)", res.Stats.Iterations, res.Stats.Residual)
		}
		fmt.Fprintln(stdout)
		if err := printTop(stdout, store, res.Scores, *k); err != nil {
			return err
		}
		if *entities {
			if err := printEntities(stdout, store, net, res.Scores, *k); err != nil {
				return err
			}
		}
	}
	return nil
}

// printTop prints the top-k articles by score as a table.
func printTop(w io.Writer, store *corpus.Store, scores []float64, k int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tscore\tyear\tkey\ttitle")
	for pos, i := range rank.TopK(scores, k) {
		a := store.Article(corpus.ArticleID(i))
		title := a.Title
		if len(title) > 60 {
			title = title[:57] + "..."
		}
		fmt.Fprintf(tw, "%d\t%.6g\t%d\t%s\t%s\n", pos+1, scores[i], a.Year, a.Key, title)
	}
	return tw.Flush()
}

// runScorer runs one registered core scorer (all signal components it
// produces, not just the blended score), optionally streaming
// per-iteration solver residuals and optionally persisting the result
// as a serving snapshot. The default scorer keeps its historical
// QISA-Rank heading.
func runScorer(stdout, stderr io.Writer, store *corpus.Store, net *hetnet.Network,
	scorer string, sopts core.ScorerOptions, workers, k int, entities bool, savePath string, trace bool,
	shards int, shardJacobi bool) error {
	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.Shards = shards
	opts.ShardJacobi = shardJacobi
	if trace {
		opts.Trace = func(ev core.TraceEvent) {
			fmt.Fprintf(stderr, "trace %-8s iter=%-3d residual=%.3e elapsed=%s\n",
				ev.Phase, ev.Iteration, ev.Residual, ev.Elapsed.Round(time.Microsecond))
		}
	}
	sc, err := core.RankScorer(net, scorer, sopts, opts)
	if err != nil {
		return fmt.Errorf("%s: %w", scorer, err)
	}
	label := scorer
	if scorer == core.DefaultScorer {
		label = "QISA-Rank"
	}
	fmt.Fprintf(stdout, "\n# %s", label)
	for _, st := range []struct {
		phase string
		stats sparse.IterStats
	}{{"prestige", sc.PrestigeStats}, {"hetero", sc.HeteroStats}} {
		if st.stats.Iterations > 0 {
			fmt.Fprintf(stdout, " (%s: %d iterations, residual %.2e, %s)",
				st.phase, st.stats.Iterations, st.stats.Residual, st.stats.Elapsed.Round(time.Microsecond))
		}
	}
	fmt.Fprintln(stdout)
	if sc.Shards > 1 {
		fmt.Fprintf(stderr, "sharded solve: %d shards, edges %v, %d boundary-mass exchanges\n",
			sc.Shards, sc.ShardEdges, sc.PrestigeStats.Exchanges+sc.HeteroStats.Exchanges)
	}
	if err := printTop(stdout, store, sc.Importance, k); err != nil {
		return err
	}
	if entities {
		if err := printEntities(stdout, store, net, sc.Importance, k); err != nil {
			return err
		}
	}
	if savePath == "" {
		return nil
	}
	snap := live.Capture(store, sc, 1, time.Now().Unix())
	if err := live.WriteSnapshotFile(savePath, snap); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote ranking snapshot %s (%d articles, fingerprint %016x)\n",
		savePath, snap.Articles, snap.Fingerprint)
	return nil
}

// printEntities derives and prints author and venue rankings from the
// article scores, using the shrunk mean so single-article entities do
// not dominate.
func printEntities(w io.Writer, store *corpus.Store, net *hetnet.Network, scores []float64, k int) error {
	authors, err := rank.AuthorRank(net, scores, rank.EntityRankOptions{})
	if err != nil {
		return fmt.Errorf("author ranking: %w", err)
	}
	fmt.Fprintln(w, "\n## top authors")
	for pos, i := range rank.TopK(authors, k) {
		a := store.Author(corpus.AuthorID(i))
		fmt.Fprintf(w, "%3d  %.6g  %s (%d articles)\n",
			pos+1, authors[i], a.Name, len(net.AuthorArticles(corpus.AuthorID(i))))
	}
	venues, err := rank.VenueRank(net, scores, rank.EntityRankOptions{})
	if err != nil {
		return fmt.Errorf("venue ranking: %w", err)
	}
	fmt.Fprintln(w, "\n## top venues")
	for pos, i := range rank.TopK(venues, k) {
		v := store.Venue(corpus.VenueID(i))
		fmt.Fprintf(w, "%3d  %.6g  %s (%d articles)\n",
			pos+1, venues[i], v.Name, len(net.VenueArticles(corpus.VenueID(i))))
	}
	return nil
}
