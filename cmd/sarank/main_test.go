package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scholarrank/internal/cliutil"
	"scholarrank/internal/corpus"
	"scholarrank/internal/live"
)

// writeTestCorpus creates a small corpus file and returns its path.
func writeTestCorpus(t *testing.T) string {
	t.Helper()
	b := corpus.NewBuilder()
	au, _ := b.InternAuthor("au", "Author")
	v, _ := b.InternVenue("v", "Venue")
	var ids []corpus.ArticleID
	for i, year := range []int{1990, 1995, 2000, 2005, 2010} {
		id, err := b.AddArticle(corpus.ArticleMeta{
			Key: "p" + string(rune('0'+i)), Title: "Article", Year: year,
			Venue: v, Authors: []corpus.AuthorID{au},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := 0; j < i; j++ {
			if err := b.AddCitation(ids[i], ids[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cliutil.WriteCorpus(f, b.Freeze(), cliutil.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleAlgo(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "CiteCount", "-k", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# CiteCount") {
		t.Errorf("missing header in %q", got)
	}
	// p0 has the most citations (4): it must appear on the rank-1 line.
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "1") && !strings.Contains(line, "p0") {
			t.Errorf("rank-1 line = %q, want p0", line)
		}
	}
	if !strings.Contains(errBuf.String(), "loaded 5 articles") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunAllAlgos(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "all", "-k", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# CiteCount", "# PageRank", "# QISA-Rank", "# CoRank"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunEntities(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-entities", "-k", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "## top authors") || !strings.Contains(out.String(), "## top venues") {
		t.Errorf("entities output missing: %q", out.String())
	}
	// JSONL stores keys only, so the reloaded author's name is its key.
	if !strings.Contains(out.String(), "au (5 articles)") {
		t.Errorf("author line missing: %q", out.String())
	}
}

func TestRunSaveScores(t *testing.T) {
	path := writeTestCorpus(t)
	snapPath := filepath.Join(t.TempDir(), "ranking.snap")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-save-scores", snapPath, "-k", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# QISA-Rank") {
		t.Errorf("missing ranking table: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "wrote ranking snapshot") {
		t.Errorf("stderr = %q", errBuf.String())
	}
	snap, err := live.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Articles != 5 || len(snap.Importance) != 5 {
		t.Errorf("snapshot = %d articles, %d scores", snap.Articles, len(snap.Importance))
	}
	// The snapshot must verify against a reload of the same corpus.
	store, err := cliutil.LoadCorpus(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Matches(store); err != nil {
		t.Error(err)
	}

	// -save-scores is QISA-specific: other algorithms lack the signal
	// components a snapshot carries.
	if err := run([]string{"-in", path, "-algo", "PageRank", "-save-scores", snapPath}, &out, &errBuf); err == nil {
		t.Error("-save-scores with -algo PageRank accepted")
	}
}

func TestRunSharded(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-shards", "2", "-k", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# QISA-Rank") {
		t.Errorf("missing QISA header: %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "sharded solve: 2 shards") {
		t.Errorf("stderr missing shard summary: %q", errBuf.String())
	}
	// The sharded ranking must match the unsharded one (iteration
	// counts in the header differ by design; the table must not).
	table := func(s string) string {
		i := strings.Index(s, "rank  ")
		if i < 0 {
			t.Fatalf("no ranking table in %q", s)
		}
		return s[i:]
	}
	var plain, plainErr bytes.Buffer
	if err := run([]string{"-in", path, "-scorer", "default", "-k", "3"}, &plain, &plainErr); err != nil {
		t.Fatal(err)
	}
	if table(out.String()) != table(plain.String()) {
		t.Errorf("sharded ranking diverges:\n%q\nvs\n%q", out.String(), plain.String())
	}
	// The jacobi exchange schedule reaches the same fixed point.
	var jac, jacErr bytes.Buffer
	if err := run([]string{"-in", path, "-shards", "2", "-shard-jacobi", "-k", "3"}, &jac, &jacErr); err != nil {
		t.Fatal(err)
	}
	if table(jac.String()) != table(plain.String()) {
		t.Errorf("jacobi sharded ranking diverges:\n%q\nvs\n%q", jac.String(), plain.String())
	}
}

func TestRunShardedFlagValidation(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-shards", "0"}, &out, &errBuf); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := run([]string{"-in", path, "-shard-jacobi"}, &out, &errBuf); err == nil {
		t.Error("-shard-jacobi without -shards accepted")
	}
	if err := run([]string{"-in", path, "-algo", "PageRank", "-shards", "2"}, &out, &errBuf); err == nil {
		t.Error("-shards with non-core algo accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{}, &out, &errBuf); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/x.jsonl"}, &out, &errBuf); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestCorpus(t)
	if err := run([]string{"-in", path, "-algo", "NoSuchAlgo"}, &out, &errBuf); err == nil {
		t.Error("unknown algo accepted")
	}
}

func TestRunScorer(t *testing.T) {
	path := writeTestCorpus(t)
	var out, errBuf bytes.Buffer
	if err := run([]string{"-in", path, "-scorer", "ewpr", "-scorer-opt", "damping=0.9", "-k", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# ewpr") {
		t.Errorf("missing scorer header: %q", out.String())
	}

	// A scorer snapshot persists the scorer name and option bag.
	snapPath := filepath.Join(t.TempDir(), "ewpr.snap")
	out.Reset()
	if err := run([]string{"-in", path, "-scorer", "alef", "-save-scores", snapPath, "-k", "2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	snap, err := live.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scorer != "alef" {
		t.Errorf("snapshot scorer = %q, want alef", snap.Scorer)
	}

	if err := run([]string{"-in", path, "-scorer", "no-such"}, &out, &errBuf); err == nil {
		t.Error("unknown scorer accepted")
	}
	if err := run([]string{"-in", path, "-scorer", "ewpr", "-scorer-opt", "damping=high"}, &out, &errBuf); err == nil {
		t.Error("non-numeric scorer option accepted")
	}
	if err := run([]string{"-in", path, "-scorer-opt", "damping=0.9"}, &out, &errBuf); err == nil {
		t.Error("-scorer-opt without -scorer accepted")
	}
}
