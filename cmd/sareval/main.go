// Command sareval runs the reproduction experiment suite (DESIGN.md
// §3) and renders every table and figure as text, optionally also as
// CSV files.
//
// Usage:
//
//	sareval -run all            # full-size corpora (~1 minute)
//	sareval -run T2 -quick      # one experiment on shrunken corpora
//	sareval -run all -csv out/  # also write out/T2.csv etc.
//	sareval -leaderboard -quick # rank one corpus with every registered scorer
//	sareval -leaderboard -json BENCH_9.json
//
// With -leaderboard the experiment suite is skipped: instead every
// registered core scorer ranks the same synthetic corpus on a shared
// engine, and the tool prints per-scorer solve cost plus the pairwise
// agreement matrix (Kendall τ-b, Spearman ρ, top-K overlap). -json
// additionally writes the results as a machine-readable artifact.
//
// Solver parallelism follows -workers; when that is 0 the
// QISA_BENCH_WORKERS environment variable is consulted (the same
// contract as the top-level benchmarks) before falling back to
// NumCPU.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"scholarrank/internal/experiments"
	"scholarrank/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sareval: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against the given arguments and streams; it
// is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sareval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID       = fs.String("run", "all", "experiment id (T1..T8, F1..F8) or 'all'")
		quick       = fs.Bool("quick", false, "use shrunken corpora (seconds instead of minutes)")
		workers     = fs.Int("workers", 0, "mat-vec workers (0 = QISA_BENCH_WORKERS, then NumCPU)")
		seed        = fs.Int64("seed", 0, "seed offset for variance studies")
		csvDir      = fs.String("csv", "", "directory to also write per-table CSV files")
		leaderboard = fs.Bool("leaderboard", false, "rank one corpus with every registered core scorer and print the agreement matrix")
		topK        = fs.Int("topk", 100, "top-K cutoff for the leaderboard overlap metric")
		shards      = fs.Int("shards", 1, "leaderboard: solve damped walks over this many edge-balanced shards (one worker pool shared across shards)")
		jsonPath    = fs.String("json", "", "write leaderboard results as a JSON artifact (BENCH_9.json in CI)")
		version     = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.VersionString("sareval"))
		return nil
	}
	resolved, err := resolveWorkers(*workers, os.Getenv("QISA_BENCH_WORKERS"))
	if err != nil {
		return err
	}
	*workers = resolved

	opts := experiments.Options{Quick: *quick, Workers: *workers, Seed: *seed}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}
	if *leaderboard {
		if *topK <= 0 {
			return fmt.Errorf("-topk must be positive, got %d", *topK)
		}
		return runLeaderboard(stdout, opts, *topK, *shards, *jsonPath, *csvDir)
	}
	if *jsonPath != "" {
		return fmt.Errorf("-json only applies to -leaderboard runs")
	}
	if *shards > 1 {
		return fmt.Errorf("-shards only applies to -leaderboard runs")
	}

	var list []experiments.Experiment
	if strings.EqualFold(*runID, "all") {
		list = experiments.All()
	} else {
		e, err := experiments.ByID(strings.ToUpper(*runID))
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	}

	for _, e := range list {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(stdout)
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stdout, "(%s finished in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// resolveWorkers applies the benchmark-parallelism contract: an
// explicit -workers wins, then QISA_BENCH_WORKERS (the variable the
// top-level benchmarks read), then 0 — the solver's NumCPU default. A
// malformed environment value fails loudly rather than silently
// benchmarking at the wrong parallelism.
func resolveWorkers(flagWorkers int, env string) (int, error) {
	if flagWorkers != 0 || env == "" {
		return flagWorkers, nil
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad QISA_BENCH_WORKERS %q", env)
	}
	return n, nil
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
