// Command sareval runs the reproduction experiment suite (DESIGN.md
// §3) and renders every table and figure as text, optionally also as
// CSV files.
//
// Usage:
//
//	sareval -run all            # full-size corpora (~1 minute)
//	sareval -run T2 -quick      # one experiment on shrunken corpora
//	sareval -run all -csv out/  # also write out/T2.csv etc.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"scholarrank/internal/experiments"
	"scholarrank/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sareval: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against the given arguments and streams; it
// is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sareval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID   = fs.String("run", "all", "experiment id (T1..T8, F1..F8) or 'all'")
		quick   = fs.Bool("quick", false, "use shrunken corpora (seconds instead of minutes)")
		workers = fs.Int("workers", 0, "mat-vec workers (0 = NumCPU)")
		seed    = fs.Int64("seed", 0, "seed offset for variance studies")
		csvDir  = fs.String("csv", "", "directory to also write per-table CSV files")
		version = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, obs.VersionString("sareval"))
		return nil
	}

	opts := experiments.Options{Quick: *quick, Workers: *workers, Seed: *seed}

	var list []experiments.Experiment
	if strings.EqualFold(*runID, "all") {
		list = experiments.All()
	} else {
		e, err := experiments.ByID(strings.ToUpper(*runID))
		if err != nil {
			return err
		}
		list = []experiments.Experiment{e}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range list {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(stdout)
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stdout, "(%s finished in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
