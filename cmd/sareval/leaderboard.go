package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"scholarrank/internal/core"
	"scholarrank/internal/eval"
	"scholarrank/internal/experiments"
	"scholarrank/internal/hetnet"
	"scholarrank/internal/rank"
	"scholarrank/internal/sparse"
)

// leaderboardIter is the iteration budget every compared scorer gets —
// the same cap the experiment suite gives its methods, so no scorer
// wins by running longer.
var leaderboardIter = sparse.IterOptions{Tol: 1e-10, MaxIter: 300}

// scorerResult is one leaderboard row, JSON-shaped for the BENCH
// artifact.
type scorerResult struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`

	scores []float64
}

// pairResult compares two scorers' rankings: full-list rank
// correlations plus the fraction of the top K they share.
type pairResult struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	Kendall  float64 `json:"kendall_tau"`
	Spearman float64 `json:"spearman_rho"`
	Overlap  float64 `json:"top_k_overlap"`
}

// leaderboardReport is the -json artifact envelope (BENCH_9.json in
// CI).
type leaderboardReport struct {
	Corpus   string         `json:"corpus"`
	Articles int            `json:"articles"`
	Workers  int            `json:"workers"`
	Shards   int            `json:"shards"`
	TopK     int            `json:"top_k"`
	Scorers  []scorerResult `json:"scorers"`
	Pairwise []pairResult   `json:"pairwise"`
}

// runLeaderboard ranks one synthetic corpus with every registered
// scorer on a shared engine (warm caches are scorer-namespaced, so
// sharing is fair) and renders a per-scorer cost table plus the
// pairwise agreement matrix: Kendall τ-b and Spearman ρ over the full
// ranking, and top-K overlap where ranking products are actually
// consumed.
func runLeaderboard(stdout io.Writer, opts experiments.Options, topK, shards int, jsonPath, csvDir string) error {
	start := time.Now()
	c, err := experiments.BuildCorpus(experiments.SizeSmall, opts)
	if err != nil {
		return err
	}
	n := c.Store.NumArticles()
	if topK > n {
		topK = n
	}
	net := hetnet.Build(c.Store)
	eng := core.NewEngine(net)
	defer eng.Close()
	ropts := core.DefaultOptions()
	ropts.Workers = opts.Workers
	ropts.Iter = leaderboardIter
	// The shard count applies to every scorer's damped walks; the
	// engine runs all shards on its single shared worker pool, so
	// -workers / QISA_BENCH_WORKERS bounds total parallelism, not
	// per-shard parallelism.
	ropts.Shards = shards

	var results []scorerResult
	var poolWorkers int
	for _, name := range core.ScorerNames() {
		solveStart := time.Now()
		sc, err := eng.RankScorer(name, nil, ropts)
		if err != nil {
			return fmt.Errorf("leaderboard: %s: %w", name, err)
		}
		poolWorkers = sc.Pool.Workers
		iters := sc.PrestigeStats.Iterations + sc.HeteroStats.Iterations
		conv := true
		if sc.PrestigeStats.Iterations > 0 {
			conv = conv && sc.PrestigeStats.Converged
		}
		if sc.HeteroStats.Iterations > 0 {
			conv = conv && sc.HeteroStats.Converged
		}
		results = append(results, scorerResult{
			Name: name, Seconds: time.Since(solveStart).Seconds(),
			Iterations: iters, Converged: conv, scores: sc.Importance,
		})
	}

	pairs, err := pairwise(results, topK)
	if err != nil {
		return err
	}

	cost := &experiments.Table{
		ID:      "L1",
		Title:   "scorer leaderboard (one corpus, shared engine, equal iteration budget)",
		Columns: []string{"scorer", "solve_s", "iterations", "converged"},
		Notes: []string{
			fmt.Sprintf("synthetic %s corpus, %d articles, %d workers, %d shards, tol %.0e cap %d iterations",
				experiments.SizeSmall, n, poolWorkers, shards, leaderboardIter.Tol, leaderboardIter.MaxIter),
		},
	}
	for _, r := range results {
		cost.AddRow(r.Name, r.Seconds, r.Iterations, fmt.Sprintf("%v", r.Converged))
	}
	agree := &experiments.Table{
		ID:      "L2",
		Title:   fmt.Sprintf("pairwise ranking agreement (overlap@%d)", topK),
		Columns: []string{"a", "b", "kendall_tau", "spearman_rho", fmt.Sprintf("overlap@%d", topK)},
		Notes: []string{
			"full-list rank correlations; overlap is the shared fraction of the two top-K sets",
		},
	}
	for _, p := range pairs {
		agree.AddRow(p.A, p.B, p.Kendall, p.Spearman, p.Overlap)
	}
	for _, t := range []*experiments.Table{cost, agree} {
		fmt.Fprintln(stdout)
		if err := t.Render(stdout); err != nil {
			return err
		}
		if csvDir != "" {
			if err := writeCSV(csvDir, t); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(stdout, "(leaderboard finished in %v: %d scorers)\n",
		time.Since(start).Round(time.Millisecond), len(results))

	if jsonPath == "" {
		return nil
	}
	report := leaderboardReport{
		Corpus: experiments.SizeSmall, Articles: n, Workers: poolWorkers,
		Shards: shards, TopK: topK, Scorers: results, Pairwise: pairs,
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	encoder := json.NewEncoder(f)
	encoder.SetIndent("", "  ")
	if err := encoder.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pairwise computes the agreement metrics for every unordered scorer
// pair, in registry order.
func pairwise(results []scorerResult, topK int) ([]pairResult, error) {
	var pairs []pairResult
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			a, b := results[i], results[j]
			tau, err := eval.KendallTau(a.scores, b.scores)
			if err != nil {
				return nil, fmt.Errorf("leaderboard: %s vs %s: %w", a.Name, b.Name, err)
			}
			rho, err := eval.Spearman(a.scores, b.scores)
			if err != nil {
				return nil, fmt.Errorf("leaderboard: %s vs %s: %w", a.Name, b.Name, err)
			}
			pairs = append(pairs, pairResult{
				A: a.Name, B: b.Name, Kendall: tau, Spearman: rho,
				Overlap: topOverlap(a.scores, b.scores, topK),
			})
		}
	}
	return pairs, nil
}

// topOverlap is |topK(a) ∩ topK(b)| / k.
func topOverlap(a, b []float64, k int) float64 {
	if k == 0 {
		return 1
	}
	inA := make(map[int]bool, k)
	for _, i := range rank.TopK(a, k) {
		inA[i] = true
	}
	shared := 0
	for _, i := range rank.TopK(b, k) {
		if inA[i] {
			shared++
		}
	}
	return float64(shared) / float64(k)
}
