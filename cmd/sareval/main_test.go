package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T1", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T1:") || !strings.Contains(got, "T1 finished in") {
		t.Errorf("output = %q", got)
	}
}

func TestRunLowercaseID(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "f3", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F3:") {
		t.Errorf("lowercase id not accepted: %q", out.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T1", "-quick", "-csv", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "T1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // header + 3 corpora
		t.Errorf("csv lines = %d: %q", len(lines), raw)
	}
	if !strings.HasPrefix(lines[0], "corpus,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T99"}, &out, &errBuf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown flag accepted")
	}
}
