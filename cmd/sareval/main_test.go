package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T1", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T1:") || !strings.Contains(got, "T1 finished in") {
		t.Errorf("output = %q", got)
	}
}

func TestRunLowercaseID(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "f3", "-quick"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== F3:") {
		t.Errorf("lowercase id not accepted: %q", out.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T1", "-quick", "-csv", dir}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "T1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // header + 3 corpora
		t.Errorf("csv lines = %d: %q", len(lines), raw)
	}
	if !strings.HasPrefix(lines[0], "corpus,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T99"}, &out, &errBuf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errBuf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunLeaderboard(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_9.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-leaderboard", "-quick", "-topk", "50", "-json", jsonPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== L1:") || !strings.Contains(got, "== L2:") {
		t.Fatalf("leaderboard tables missing: %q", got)
	}
	for _, scorer := range []string{"default", "prestige", "ewpr", "alef"} {
		if !strings.Contains(got, scorer) {
			t.Errorf("leaderboard missing scorer %q", scorer)
		}
	}
	if !strings.Contains(got, "kendall_tau") || !strings.Contains(got, "overlap@50") {
		t.Errorf("pairwise metrics missing: %q", got)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Articles int `json:"articles"`
		TopK     int `json:"top_k"`
		Scorers  []struct {
			Name      string `json:"name"`
			Converged bool   `json:"converged"`
		} `json:"scorers"`
		Pairwise []struct {
			Kendall float64 `json:"kendall_tau"`
		} `json:"pairwise"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Scorers) < 4 {
		t.Errorf("artifact has %d scorers, want >= 4", len(report.Scorers))
	}
	wantPairs := len(report.Scorers) * (len(report.Scorers) - 1) / 2
	if len(report.Pairwise) != wantPairs {
		t.Errorf("artifact has %d pairs, want %d", len(report.Pairwise), wantPairs)
	}
	if report.TopK != 50 || report.Articles == 0 {
		t.Errorf("artifact metadata: %+v", report)
	}
}

// TestRunLeaderboardShardedHonorsBenchWorkers is the regression test
// for the benchmark-parallelism contract on the sharded path: with
// -workers 0 the leaderboard must take its worker count from
// QISA_BENCH_WORKERS and apply it to the single pool shared by every
// shard — the artifact reports that pool's size, not workers×shards.
func TestRunLeaderboardShardedHonorsBenchWorkers(t *testing.T) {
	t.Setenv("QISA_BENCH_WORKERS", "1")
	jsonPath := filepath.Join(t.TempDir(), "BENCH.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-leaderboard", "-quick", "-shards", "2", "-topk", "20", "-json", jsonPath}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 workers, 2 shards") {
		t.Errorf("cost-table note missing shared-pool shape: %q", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Workers int `json:"workers"`
		Shards  int `json:"shards"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatal(err)
	}
	if report.Workers != 1 || report.Shards != 2 {
		t.Errorf("artifact workers/shards = %d/%d, want 1/2", report.Workers, report.Shards)
	}

	// A malformed value still fails loudly on the sharded path.
	t.Setenv("QISA_BENCH_WORKERS", "banana")
	if err := run([]string{"-leaderboard", "-quick", "-shards", "2"}, &out, &errBuf); err == nil {
		t.Error("bad QISA_BENCH_WORKERS accepted on sharded leaderboard")
	}
}

func TestRunLeaderboardFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-leaderboard", "-quick", "-topk", "0"}, &out, &errBuf); err == nil {
		t.Error("-topk 0 accepted")
	}
	if err := run([]string{"-run", "T1", "-quick", "-json", "x.json"}, &out, &errBuf); err == nil {
		t.Error("-json without -leaderboard accepted")
	}
	if err := run([]string{"-leaderboard", "-quick", "-shards", "0"}, &out, &errBuf); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := run([]string{"-run", "T1", "-quick", "-shards", "2"}, &out, &errBuf); err == nil {
		t.Error("-shards without -leaderboard accepted")
	}
}

func TestResolveWorkers(t *testing.T) {
	// -workers 0 defers to QISA_BENCH_WORKERS, the same contract the
	// top-level benchmarks follow (the engine later clamps the request
	// to GOMAXPROCS, so the resolution is tested before that clamp).
	cases := []struct {
		flag    int
		env     string
		want    int
		wantErr bool
	}{
		{0, "", 0, false},
		{0, "4", 4, false},
		{3, "4", 3, false}, // explicit flag wins
		{3, "", 3, false},
		{0, "banana", 0, true},
		{0, "-2", 0, true},
		{0, "0", 0, true},
	}
	for _, c := range cases {
		got, err := resolveWorkers(c.flag, c.env)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("resolveWorkers(%d, %q) = %d, %v; want %d, err=%v",
				c.flag, c.env, got, err, c.want, c.wantErr)
		}
	}
}

func TestBenchWorkersEnvRejected(t *testing.T) {
	t.Setenv("QISA_BENCH_WORKERS", "banana")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-run", "T1", "-quick"}, &out, &errBuf); err == nil {
		t.Error("bad QISA_BENCH_WORKERS accepted")
	}
}
