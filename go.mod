module scholarrank

go 1.22
